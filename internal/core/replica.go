package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sbft/internal/crypto/threshsig"
)

// ClientBase is the first node id used for clients; replicas are 1..n.
const ClientBase = 1_000_000

// IsClient reports whether a node id belongs to a client.
func IsClient(id int) bool { return id >= ClientBase }

// slot holds all per-sequence-number protocol state of one replica.
type slot struct {
	seq uint64

	// Highest accepted pre-prepare (fm source for view changes).
	hasPrePrepare  bool
	prePrepareView uint64
	reqs           []Request
	hash           Digest

	// Highest accepted prepare certificate (lm source).
	hasPrepare  bool
	prepareView uint64
	prepareTau  threshsig.Signature
	prepareReqs []Request
	prepareHash Digest

	// Commit certificates.
	commitProof     *FullCommitProofMsg
	commitProofView uint64
	commitSlow      *FullCommitProofSlowMsg
	commitSlowView  uint64

	committed     bool
	committedReqs []Request
	// execReqs is the exactly-once subset of committedReqs actually fed to
	// the application (requests already executed for their client at an
	// earlier sequence are skipped deterministically).
	execReqs []Request
	executed bool

	sentSignShare   bool
	sentCommitShare bool

	// C-collector state (when this replica collects for this slot).
	sigmaShares  map[int]threshsig.Share
	tauShares    map[int]threshsig.Share
	tautauShares map[int]threshsig.Share
	// tauQuorumAt records when the τ quorum was first reached; the gap to
	// the σ quorum feeds the adaptive fast-path timer (§V-E: "an adaptive
	// protocol based on past network profiling to control this timer").
	tauQuorumAt   time.Duration
	tauQuorumSeen bool
	// pendingShares buffers sign-shares that arrived before this
	// collector's own pre-prepare (they cannot be verified yet); replayed
	// by acceptPrePrepare. Without this, WAN reordering starves the fast
	// path of its 3f+c+1 quorum.
	pendingShares []SignShareMsg
	// pendingProofs buffers commit certificates that raced ahead of the
	// pre-prepare.
	pendingFast   *FullCommitProofMsg
	pendingSlow   *FullCommitProofSlowMsg
	collectorView uint64
	sentFastProof bool
	sentPrepare   bool
	sentSlowProof bool
	fastTimer     func() // cancel
	staggerTimer  func() // cancel

	// Crypto-sink staging (cryptosink.go): shares queued for off-loop
	// verification, the in-flight-batch flag, and the epoch guard that
	// invalidates continuations when the collector state resets.
	verifyQ     []pendingVerify
	verifying   bool
	verifyEpoch uint64

	// E-collector state. π shares are grouped by the digest they sign: a
	// Byzantine replica may send correctly-signed shares over a garbage
	// digest, and first-write-wins bookkeeping would let one such share
	// block the honest f+1 quorum. Per-digest groups make the garbage
	// digest inert (it can never gather f+1 signers, at least one of
	// which would have to be honest).
	piShares     map[string]map[int]threshsig.Share
	execDigest   []byte
	execPi       threshsig.Signature
	sentExecCert bool
	execAcked    bool
	execCertSeen bool
}

func (s *slot) resetCollector(view uint64) {
	s.sigmaShares = make(map[int]threshsig.Share)
	s.tauShares = make(map[int]threshsig.Share)
	s.tautauShares = make(map[int]threshsig.Share)
	s.collectorView = view
	s.sentFastProof = false
	s.sentPrepare = false
	s.sentSlowProof = false
	if s.fastTimer != nil {
		s.fastTimer()
		s.fastTimer = nil
	}
	if s.staggerTimer != nil {
		s.staggerTimer()
		s.staggerTimer = nil
	}
	s.resetVerifyQ()
}

// watchEntry records the highest pending timestamp of a client and when
// it was first seen.
type watchEntry struct {
	ts    uint64
	since time.Duration
}

// replyCacheEntry remembers where a client's last request executed.
type replyCacheEntry struct {
	timestamp uint64
	seq       uint64
	l         int
	val       []byte
}

// Metrics counts observable protocol events for experiments.
type Metrics struct {
	FastCommits  uint64
	SlowCommits  uint64
	Executions   uint64
	ViewChanges  uint64
	Checkpoints  uint64
	StateFetches uint64
	NullBlocks   uint64
	GapRepairs   uint64
	// DedupSkips counts committed requests skipped at execution because
	// the client's request had already executed at an earlier sequence
	// (exactly-once enforcement across view changes and retries).
	DedupSkips uint64
	// SnapshotChunks counts snapshot chunks fetched and leaf-verified
	// during state transfer.
	SnapshotChunks uint64
	// SnapshotBlames counts snapshot servers blamed for serving metadata
	// or chunks that failed verification against the certified root.
	SnapshotBlames uint64
	// SnapshotChunkRetries counts chunk requests re-issued after their
	// per-chunk retry timer expired (a lost request or an unresponsive
	// server) — the windowed transfer's loss-recovery path.
	SnapshotChunkRetries uint64
	// SnapshotTimeoutExclusions counts servers excluded from a transfer
	// for repeated unanswered chunk requests (slow-trickling; distinct
	// from SnapshotBlames, which counts provable tampering).
	SnapshotTimeoutExclusions uint64
	// SnapshotPersists counts certified snapshots durably persisted,
	// synchronously or through the async SnapshotSink.
	SnapshotPersists uint64
	// CollectorTimeouts counts fast-path collector timer expirations: a
	// C-collector waited out its adaptive fast timer on a slot that had a
	// τ quorum but no σ quorum (§V-E). Every expiration is counted, even
	// when another collector's prepare made this one's redundant.
	CollectorTimeouts uint64
	// FastPathDowngrades counts fast→linear downgrades actually engaged:
	// the collector abandoned the σ fast path and broadcast a prepare,
	// sending the slot through the two-phase linear path (§V-E).
	FastPathDowngrades uint64
	// ExecFallbacks counts execution-fallback activations: no full execute
	// certificate arrived within ExecFallbackTimeout (crashed or targeted
	// E-collectors), so this replica answered its clients directly with
	// f+1-style individual replies (§V).
	ExecFallbacks uint64
	// ViewRejoins counts lone-view-changer rejoins: while stuck in a view
	// change, certified traffic for a lower view proved the cluster live
	// without this replica, and it stood back down (§VII liveness).
	ViewRejoins uint64
	// AdmissionRejects counts requests refused because the pending queue
	// was at its MaxPending bound (§V-C backpressure): the client got a
	// BusyMsg retry hint instead of a queue slot.
	AdmissionRejects uint64
	// BadShares counts threshold-signature shares that failed
	// verification (individually, or blamed by the batch-verification
	// fallback after an RLC batch check failed).
	BadShares uint64
	// SnapshotTransferRestarts counts mid-transfer supersessions that
	// DISCARDED verified chunk progress. A supersession whose delta
	// prefill carried the already-fetched chunks forward is not a
	// restart (it counts under SnapshotDeltaTransfers), and neither is
	// a completed transfer followed by a fresh fetch for the remaining
	// gap.
	SnapshotTransferRestarts uint64
	// SnapshotDeltaTransfers counts transfers (including mid-transfer
	// supersessions) that seeded chunks from a base this replica
	// already held instead of fetching the full state.
	SnapshotDeltaTransfers uint64
	// SnapshotChunksReused counts chunks satisfied from a local base
	// during delta transfers — bytes that never crossed the wire.
	SnapshotChunksReused uint64
	// CheckpointDirtyChunks accumulates, across incremental checkpoint
	// captures, how many app chunk leaves had to be re-hashed because
	// their chunk changed since the previous capture. The complement
	// (total capture leaves minus this) is work the incremental path
	// skipped.
	CheckpointDirtyChunks uint64
	// ReadsServed counts certified reads answered ReadOK: value + Merkle
	// proofs against the latest π-certified snapshot root (read.go).
	ReadsServed uint64
	// ReadsBehind counts reads refused because the certified frontier was
	// below the client's freshness floor (the read-your-writes refusal).
	ReadsBehind uint64
	// ReadsUnavailable counts reads refused for lack of a certified
	// bucketed snapshot or an op→key mapping.
	ReadsUnavailable uint64
	// ReadBatches counts read-batch flushes; ReadsServed/ReadBatches is
	// the realized proof-generation amortization factor.
	ReadBatches uint64
	// TxPrepares / TxCommits / TxAborts mirror the application's
	// cumulative cross-shard 2PC counters (core.TwoPhaser): prepares
	// that locked and staged writes, commits that passed the
	// certificate-verifying commit rule, and aborts applied on refusal
	// evidence (ROADMAP item 5).
	TxPrepares uint64
	TxCommits  uint64
	TxAborts   uint64
	// TxCoordFailovers counts cross-shard transactions a RECOVERY
	// coordinator finished after the original coordinator crashed or
	// equivocated mid-2PC. Replicas never set it — coordination is
	// outside the replica — but it lives here so the sharded cluster's
	// aggregated Metrics carries the whole cross-shard story.
	TxCoordFailovers uint64
}

// BlockStore persists committed decision blocks (the paper persists
// transactions to disk via RocksDB; internal/storage provides the
// substitute). Nil disables persistence.
type BlockStore interface {
	Append(seq uint64, payload []byte) error
}

// Replica is one SBFT replica: a deterministic event machine driven by
// Deliver and timer callbacks. It is not safe for concurrent use; the
// runtime (simulator or transport shell) must serialize calls.
type Replica struct {
	id    int
	cfg   Config
	suite CryptoSuite
	keys  ReplicaKeys
	app   Application
	env   Env
	store BlockStore

	view         uint64
	inViewChange bool
	// lastStable is the highest π-proven stable checkpoint (ls in §V-F);
	// windowBase additionally reflects the fast-path rule that advances
	// the window without a checkpoint quorum (ls := max(ls, s − win/4)).
	lastStable   uint64
	windowBase   uint64
	lastExecuted uint64 // le
	stableDigest []byte
	stablePi     threshsig.Signature
	slots        map[uint64]*slot
	// snapGens is the bounded chain of retained stable certified
	// snapshot generations, oldest first; the newest entry is the one
	// advertised to fetchers. Older generations stay servable (in
	// memory) so fetchers mid-transfer keep completing across
	// checkpoint supersessions, and each generation records which chunk
	// leaves changed from its chain predecessor so a laggard holding an
	// older retained generation fetches one base plus deltas instead of
	// the full state. Depth is Config.SnapshotRetain.
	snapGens []*snapGeneration
	// capCache carries chunk identities and leaf hashes between
	// consecutive checkpoint captures, so an application with an
	// incremental capture path (ChunkedSnapshotter) costs
	// O(chunks-changed) per checkpoint rather than O(state).
	capCache *CaptureCache
	// pendingSnap holds certified snapshots captured at the moment a
	// checkpoint sequence executed, keyed by that sequence. Stabilization
	// (the π quorum) arrives a round-trip later, when execution may have
	// pipelined past the checkpoint; capturing then would mislabel newer
	// state (and a newer reply table) with the older certified digest.
	pendingSnap map[uint64]*CertifiedSnapshot
	// fetch is the in-progress chunked state transfer, if any.
	fetch *stateFetch
	// snapshotBlames accumulates, per server id, how many times that
	// server was blamed for snapshot material failing verification.
	snapshotBlames map[int]int
	// sink, when set, receives adopted snapshots for asynchronous
	// persistence (see SnapshotSink); nil falls back to the synchronous
	// SnapshotStore path.
	sink SnapshotSink
	// durableSnap is the highest snapshot sequence known persisted (the
	// restart-survivable serving point, armed by the sink's completion).
	durableSnap uint64
	// csink runs threshold-share verification and combination, inline by
	// default or on a worker pool when SetCryptoSink installs one (see
	// cryptosink.go). Never nil.
	csink CryptoSink

	// Primary state.
	pending []Request
	// pendingIdx indexes pending by client → set of queued timestamps, so
	// requeue's already-queued check is O(1) instead of a full scan per
	// re-added request (O(n²) at view installation with a deep queue).
	// Inner sets are tiny: a client has at most a couple of in-flight
	// timestamps at once.
	pendingIdx map[int]map[uint64]bool
	seen       map[int]uint64 // client → highest in-flight (unexecuted) timestamp
	nextSeq    uint64
	batchTimer func()

	// Client bookkeeping.
	replyCache map[int]replyCacheEntry
	directReq  map[uint64]map[int]bool // seq → set of request indexes wanting direct replies
	// watch tracks client requests this replica knows about but has not
	// yet executed; non-empty watch arms the liveness timer (§VII).
	watch map[int]watchEntry

	// Checkpoint shares collected at checkpoint sequences, grouped by the
	// digest they sign (see the piShares comment: per-digest groups keep
	// a Byzantine replica's signed-garbage digest from blocking the
	// honest quorum).
	ckptShares map[uint64]map[string]map[int]threshsig.Share

	// ppBuffer holds pre-prepares that arrived from a future view's
	// primary before this replica installed that view (the new primary's
	// first proposals race its new-view broadcast on jittery links);
	// replayed on view installation.
	ppBuffer map[uint64][]PrePrepareMsg

	// View change state.
	vcMsgs        map[uint64]map[int]*ViewChangeMsg // target view → sender → msg
	vcSent        map[uint64]bool
	vcResent      map[uint64]bool // view-change re-unicast to a late primary
	vcBackoff     uint64
	progressTimer func()
	vcTimer       func()
	gapTimer      func()
	gapAttempt    int

	// Certified-read batching (read.go): queued reads and the flush timer
	// that bounds their wait.
	readQueue []readRequest
	readTimer func()

	// fastSpread is an EWMA of the observed τ-quorum → σ-quorum share
	// arrival gap, driving the adaptive fast-path timer (§V-E).
	fastSpread     time.Duration
	fastSpreadSeen bool

	Metrics Metrics

	// trace, when set, receives debug lines (tests).
	trace func(format string, args ...any)
}

// NewReplica constructs a replica. app must be at genesis (nothing
// executed); id is 1-based.
func NewReplica(id int, cfg Config, suite CryptoSuite, keys ReplicaKeys, app Application, env Env, store BlockStore) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 1 || id > cfg.N() {
		return nil, fmt.Errorf("core: replica id %d out of range [1,%d]", id, cfg.N())
	}
	r := &Replica{
		id:             id,
		cfg:            cfg,
		suite:          suite,
		keys:           keys,
		app:            app,
		env:            env,
		store:          store,
		slots:          make(map[uint64]*slot),
		pendingIdx:     make(map[int]map[uint64]bool),
		seen:           make(map[int]uint64),
		nextSeq:        1,
		replyCache:     make(map[int]replyCacheEntry),
		directReq:      make(map[uint64]map[int]bool),
		watch:          make(map[int]watchEntry),
		ckptShares:     make(map[uint64]map[string]map[int]threshsig.Share),
		vcMsgs:         make(map[uint64]map[int]*ViewChangeMsg),
		vcSent:         make(map[uint64]bool),
		vcResent:       make(map[uint64]bool),
		ppBuffer:       make(map[uint64][]PrePrepareMsg),
		pendingSnap:    make(map[uint64]*CertifiedSnapshot),
		snapshotBlames: make(map[int]int),
	}
	r.csink = syncSink{suite}
	return r, nil
}

// ID reports the replica id.
func (r *Replica) ID() int { return r.id }

// View reports the current view.
func (r *Replica) View() uint64 { return r.view }

// LastExecuted reports le.
func (r *Replica) LastExecuted() uint64 { return r.lastExecuted }

// LastStable reports ls.
func (r *Replica) LastStable() uint64 { return r.lastStable }

// InViewChange reports whether the replica is between views.
func (r *Replica) InViewChange() bool { return r.inViewChange }

// SetTrace installs a debug trace sink.
func (r *Replica) SetTrace(fn func(string, ...any)) { r.trace = fn }

func (r *Replica) tracef(format string, args ...any) {
	if r.trace != nil {
		r.trace("[r%d v%d] "+format, append([]any{r.id, r.view}, args...)...)
	}
}

func (r *Replica) isPrimary() bool { return r.cfg.Primary(r.view) == r.id }

func (r *Replica) getSlot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{seq: seq}
		s.resetCollector(r.view)
		r.slots[seq] = s
	}
	return s
}

// broadcast sends msg to every replica except self.
func (r *Replica) broadcast(msg Message) {
	for i := 1; i <= r.cfg.N(); i++ {
		if i != r.id {
			r.env.Send(i, msg)
		}
	}
}

// Deliver dispatches an incoming message. It is the single entry point of
// the event machine.
func (r *Replica) Deliver(from int, msg any) {
	switch m := msg.(type) {
	case RequestMsg:
		r.onRequest(from, m)
	case PrePrepareMsg:
		r.onPrePrepare(from, m)
	case SignShareMsg:
		r.onSignShare(from, m)
	case FullCommitProofMsg:
		r.onFullCommitProof(from, m)
	case PrepareMsg:
		r.onPrepare(from, m)
	case CommitMsg:
		r.onCommit(from, m)
	case FullCommitProofSlowMsg:
		r.onFullCommitProofSlow(from, m)
	case SignStateMsg:
		r.onSignState(from, m)
	case FullExecuteProofMsg:
		r.onFullExecuteProof(from, m)
	case CheckpointShareMsg:
		r.onCheckpointShare(from, m)
	case CheckpointCertMsg:
		r.onCheckpointCert(from, m)
	case FetchCommitMsg:
		r.onFetchCommit(from, m)
	case CommitInfoMsg:
		r.onCommitInfo(from, m)
	case FetchStateMsg:
		r.onFetchState(from, m)
	case SnapshotMetaMsg:
		r.onSnapshotMeta(from, m)
	case FetchSnapshotChunkMsg:
		r.onFetchSnapshotChunk(from, m)
	case SnapshotChunkMsg:
		r.onSnapshotChunk(from, m)
	case ViewChangeMsg:
		r.onViewChange(from, m)
	case NewViewMsg:
		r.onNewView(from, m)
	case ReadMsg:
		r.onRead(from, m)
	}
}

// ---------------------------------------------------------------------------
// Request handling and proposing (primary).

func (r *Replica) onRequest(from int, m RequestMsg) {
	req := m.Req
	// Reply from cache for already-executed requests (retries).
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		if ent.timestamp == req.Timestamp {
			r.env.Send(req.Client, ReplyMsg{
				Seq: ent.seq, L: ent.l, Replica: r.id, View: r.view,
				Client: req.Client, Timestamp: ent.timestamp, Val: ent.val,
			})
		}
		return
	}
	// Admission control (§V-C backpressure): a full pending queue rejects
	// new work instead of queueing it — under open-loop overload an
	// unbounded queue (and the seen/watch maps that shadow it) trades
	// memory and tail latency for zero extra throughput. The primary
	// answers with a retry hint; a backup just declines to retain the
	// request (its copy only matters if it becomes primary, by which time
	// the client will have retried). Requests already admitted (covered by
	// `seen`) fall through to the normal dedup paths.
	if limit := r.maxPending(); len(r.pending) >= limit {
		if known, ok := r.seen[req.Client]; !ok || known < req.Timestamp {
			r.Metrics.AdmissionRejects++
			if r.isPrimary() && IsClient(from) {
				r.env.Send(req.Client, BusyMsg{
					Client: req.Client, Timestamp: req.Timestamp, RetryAfter: r.retryHint(),
				})
			} else if !r.isPrimary() && IsClient(from) {
				// The primary runs its own admission and may have room.
				r.env.Send(r.cfg.Primary(r.view), m)
			}
			return
		}
	}
	if w, ok := r.watch[req.Client]; !ok || w.ts < req.Timestamp {
		r.watch[req.Client] = watchEntry{ts: req.Timestamp, since: r.env.Now()}
	}
	if !r.isPrimary() {
		// Forward to the primary and watch for progress (§V-A retry path:
		// a request reaching a backup arms the liveness timer, §VII).
		if IsClient(from) {
			r.env.Send(r.cfg.Primary(r.view), m)
		}
		r.notePending(req) // retained so a future primary can propose it
		r.armProgressTimer()
		return
	}
	r.notePending(req)
	r.armProgressTimer()
	r.proposeIfReady(false)
}

// pendingIdxAdd records a queued request in the client index.
func (r *Replica) pendingIdxAdd(req Request) {
	set := r.pendingIdx[req.Client]
	if set == nil {
		set = make(map[uint64]bool, 1)
		r.pendingIdx[req.Client] = set
	}
	set[req.Timestamp] = true
}

// pendingIdxDel removes a dequeued request from the client index.
func (r *Replica) pendingIdxDel(req Request) {
	set := r.pendingIdx[req.Client]
	if set == nil {
		return
	}
	delete(set, req.Timestamp)
	if len(set) == 0 {
		delete(r.pendingIdx, req.Client)
	}
}

// notePending enqueues a request if it is new.
func (r *Replica) notePending(req Request) {
	if ts, ok := r.seen[req.Client]; ok && ts >= req.Timestamp {
		return
	}
	r.seen[req.Client] = req.Timestamp
	r.pending = append(r.pending, req)
	r.pendingIdxAdd(req)
	r.armBatchTimer()
}

// requeue re-adds a request to the pending queue unless it has already
// executed or is already covered by the queue, bypassing the `seen` dedup
// (which tracks proposed-but-possibly-lost requests). Used at view
// installation so requests stuck in slots the new view did not adopt are
// proposed again; the exactly-once execution filter makes a redundant
// re-proposal harmless.
func (r *Replica) requeue(req Request) {
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		return
	}
	// Already queued (same timestamp), or superseded by a LATER queued
	// operation of the same client: clients are sequential, so a queued
	// higher timestamp proves the client saw this operation complete —
	// re-proposing it could only be deduplicated again at execution.
	// Checked against the client index instead of scanning the whole
	// queue (a 10k-deep queue at view installation made this O(n²)).
	for ts := range r.pendingIdx[req.Client] {
		if ts >= req.Timestamp {
			return
		}
	}
	r.pending = append(r.pending, req)
	r.pendingIdxAdd(req)
	if ts := r.seen[req.Client]; ts < req.Timestamp {
		r.seen[req.Client] = req.Timestamp
	}
}

// armBatchTimer ensures a pending-but-unproposed request cannot starve:
// whenever the primary holds pending requests, a batch timer is running.
func (r *Replica) armBatchTimer() {
	if !r.isPrimary() || len(r.pending) == 0 || r.batchTimer != nil || r.cfg.BatchTimeout <= 0 {
		return
	}
	r.batchTimer = r.env.After(r.cfg.BatchTimeout, func() {
		r.batchTimer = nil
		r.proposeIfReady(true)
	})
}

// activeWindow is the number of blocks committed in parallel by the
// primary: ⌊(n−1)/(c+1)⌋, capped by win/2 (§VIII).
func (r *Replica) activeWindow() uint64 {
	aw := uint64((r.cfg.N() - 1) / (r.cfg.C + 1))
	if aw < 1 {
		aw = 1
	}
	if aw > r.cfg.Win/2 {
		aw = r.cfg.Win / 2
	}
	return aw
}

// adaptiveBatch implements the paper's heuristic: pending divided by half
// the allowed concurrency, clamped to [1, Batch] (§V-C, §VIII).
func (r *Replica) adaptiveBatch() int {
	half := int(r.activeWindow() / 2)
	if half < 1 {
		half = 1
	}
	b := len(r.pending) / half
	if b < 1 {
		b = 1
	}
	if b > r.cfg.Batch {
		b = r.cfg.Batch
	}
	return b
}

// maxPending is the admission bound on the pending queue (§V-C
// backpressure). The derived default keeps several full windows of
// max-sized blocks queued — enough to ride out proposal bursts without
// letting queueing delay dominate client latency.
func (r *Replica) maxPending() int {
	if r.cfg.MaxPending > 0 {
		return r.cfg.MaxPending
	}
	if r.cfg.MaxPending < 0 {
		return int(^uint(0) >> 1) // unbounded (legacy behavior)
	}
	return 4 * r.cfg.Batch * int(r.activeWindow())
}

// retryHint estimates when a rejected client should retry: the time to
// drain about half the queue at the batch cadence, clamped to keep a
// momentarily deep queue from parking clients for long.
func (r *Replica) retryHint() time.Duration {
	per := r.cfg.BatchTimeout
	if per <= 0 {
		per = 10 * time.Millisecond
	}
	blocks := len(r.pending) / (2 * r.cfg.Batch)
	d := time.Duration(blocks+1) * per
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// outstanding counts proposed-but-uncommitted sequence numbers.
func (r *Replica) outstanding() uint64 {
	var n uint64
	for seq := r.windowBase + 1; seq < r.nextSeq; seq++ {
		if s, ok := r.slots[seq]; !ok || !s.committed {
			n++
		}
	}
	return n
}

func (r *Replica) proposeIfReady(timerFired bool) {
	if !r.isPrimary() || r.inViewChange {
		return
	}
	// Whatever stops the proposal loop, leftover pending requests must
	// have a running batch timer to pick them up.
	defer r.armBatchTimer()
	for {
		if len(r.pending) == 0 {
			return
		}
		if !timerFired && len(r.pending) < r.adaptiveBatch() {
			return
		}
		if r.outstanding() >= r.activeWindow() {
			return
		}
		if r.nextSeq > r.windowBase+r.cfg.Win {
			return
		}
		// §V-C: the adaptive heuristic sizes the block, not just the
		// proposal gate — cutting cfg.Batch here would propose max-sized
		// blocks whenever enough requests piled up, and the pending/(aw/2)
		// shaping would never reach the wire. Timer-fired proposals may
		// still cut below the heuristic (whatever is pending goes out).
		batch := r.adaptiveBatch()
		if len(r.pending) < batch {
			batch = len(r.pending)
		}
		reqs := make([]Request, batch)
		copy(reqs, r.pending[:batch])
		for _, req := range reqs {
			r.pendingIdxDel(req)
		}
		r.pending = r.pending[batch:]
		seq := r.nextSeq
		r.nextSeq++
		pp := PrePrepareMsg{Seq: seq, View: r.view, Reqs: reqs}
		r.tracef("propose seq=%d batch=%d", seq, len(reqs))
		r.broadcast(pp)
		r.acceptPrePrepare(r.id, pp)
		timerFired = false // only force one under-sized batch per timer
	}
}

// ---------------------------------------------------------------------------
// Fast path: pre-prepare → sign-share → full-commit-proof.

func (r *Replica) onPrePrepare(from int, m PrePrepareMsg) {
	if m.View != r.view || r.inViewChange {
		// A future view's primary may propose before our new-view message
		// arrives (its first pre-prepares race the install on jittery
		// links): buffer and replay at installation instead of dropping.
		// Bounded to one primary rotation of future views and one entry
		// per sequence, so neither a Byzantine future-primary nor a
		// duplicating link can exhaust the buffer.
		if m.View >= r.view && m.View <= r.view+uint64(r.cfg.N()) &&
			from == r.cfg.Primary(m.View) {
			r.bufferPP(m)
		}
		// View synchronizer: while escalating alone, keep the recent lower
		// views' pre-prepares too — paired with a certified commit proof
		// they are the evidence that lets the loner rejoin (bounded to one
		// primary rotation below, same anti-exhaustion cap as above).
		if r.inViewChange && m.View < r.view && m.View+uint64(r.cfg.N()) >= r.view &&
			from == r.cfg.Primary(m.View) {
			r.bufferPP(m)
		}
		return
	}
	if from != r.cfg.Primary(r.view) {
		return
	}
	if m.Seq <= r.windowBase || m.Seq > r.windowBase+r.cfg.Win {
		if m.Seq > r.windowBase+r.cfg.Win && m.Seq > r.lastExecuted+r.cfg.Win {
			// Too far behind to catch up through the pipeline (§VIII
			// state transfer trigger).
			r.maybeFetchState(r.lastExecuted + 1)
		}
		return
	}
	s := r.getSlot(m.Seq)
	if s.hasPrePrepare && s.prePrepareView == m.View {
		if s.hash != BlockHash(m.Seq, m.View, m.Reqs) {
			// Publicly verifiable equivocation by the primary (§V-G
			// trigger): start a view change immediately.
			r.tracef("equivocation detected at seq=%d", m.Seq)
			r.startViewChange(r.view + 1)
		}
		return
	}
	r.acceptPrePrepare(from, m)
}

// bufferPP stores a racing pre-prepare for replay at view installation,
// capped at Win entries per view with one entry per sequence (duplicated
// deliveries must not evict distinct sequences).
func (r *Replica) bufferPP(m PrePrepareMsg) {
	buf := r.ppBuffer[m.View]
	for _, b := range buf {
		if b.Seq == m.Seq {
			return
		}
	}
	if uint64(len(buf)) < r.cfg.Win {
		r.ppBuffer[m.View] = append(buf, m)
	}
}

func (r *Replica) acceptPrePrepare(_ int, m PrePrepareMsg) {
	s := r.getSlot(m.Seq)
	s.hasPrePrepare = true
	s.prePrepareView = m.View
	s.reqs = m.Reqs
	s.hash = BlockHash(m.Seq, m.View, m.Reqs)
	for i, req := range m.Reqs {
		if req.Direct {
			if r.directReq[m.Seq] == nil {
				r.directReq[m.Seq] = make(map[int]bool)
			}
			r.directReq[m.Seq][i] = true
		}
		if ts := r.seen[req.Client]; ts < req.Timestamp {
			r.seen[req.Client] = req.Timestamp
		}
	}
	if s.committed {
		return
	}
	r.armProgressTimer()
	r.sendSignShare(s)
	// Replay anything that raced ahead of this pre-prepare.
	if len(s.pendingShares) > 0 {
		buffered := s.pendingShares
		s.pendingShares = nil
		for _, sh := range buffered {
			r.onSignShare(sh.Replica, sh)
		}
	}
	if s.pendingFast != nil {
		pf := *s.pendingFast
		s.pendingFast = nil
		r.onFullCommitProof(r.id, pf)
	}
	if s.pendingSlow != nil {
		ps := *s.pendingSlow
		s.pendingSlow = nil
		r.onFullCommitProofSlow(r.id, ps)
	}
}

func (r *Replica) sendSignShare(s *slot) {
	if s.sentSignShare {
		return
	}
	s.sentSignShare = true
	tauShare, err := r.keys.Tau.Sign(s.hash[:])
	if err != nil {
		r.tracef("tau sign failed: %v", err)
		return
	}
	msg := SignShareMsg{Seq: s.seq, View: s.prePrepareView, Replica: r.id, TauSig: tauShare}
	// §V-F fast-path gate: only join the fast path near the execution
	// frontier so fast commits can advance ls without a checkpoint quorum.
	if r.cfg.FastPath && s.seq <= r.lastExecuted+r.cfg.fastGateWindow() {
		sigmaShare, err := r.keys.Sigma.Sign(s.hash[:])
		if err != nil {
			r.tracef("sigma sign failed: %v", err)
			return
		}
		msg.SigmaSig = sigmaShare
	}
	r.tracef("sign-share seq=%d sigma=%v", s.seq, len(msg.SigmaSig.Data) > 0)
	targets := r.cfg.CCollectors(s.seq, s.prePrepareView)
	sent := map[int]bool{}
	for _, c := range targets {
		if sent[c] {
			continue
		}
		sent[c] = true
		if c == r.id {
			r.onSignShare(r.id, msg)
		} else {
			r.env.Send(c, msg)
		}
	}
}

// collectorIndex reports this replica's position in the C-collector list
// for (seq, view), or -1.
func (r *Replica) collectorIndex(seq, view uint64) int {
	for i, c := range r.cfg.CCollectors(seq, view) {
		if c == r.id {
			return i
		}
	}
	return -1
}

func (r *Replica) onSignShare(from int, m SignShareMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	idx := r.collectorIndex(m.Seq, m.View)
	if idx < 0 {
		return
	}
	s := r.getSlot(m.Seq)
	if s.collectorView != m.View {
		s.resetCollector(m.View)
	}
	if s.sentFastProof && s.sentSlowProof {
		return
	}
	if _, dup := s.tauShares[m.Replica]; dup {
		return
	}
	// Shares arriving before our pre-prepare cannot be verified yet:
	// buffer and replay (bounded by one share per replica).
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if len(s.pendingShares) < r.cfg.N() {
			s.pendingShares = append(s.pendingShares, m)
		}
		return
	}
	// Robustness: verify shares before counting them (§III). Verification
	// is staged through the crypto sink — inline when none is installed,
	// batched per slot onto workers when one is — so the apply
	// continuations re-check view and duplicate state.
	digest := append([]byte(nil), s.hash[:]...)
	r.enqueueShare(s, ShareTau, digest, m.TauSig, func() {
		if m.View != r.view || r.inViewChange {
			return
		}
		if _, dup := s.tauShares[m.Replica]; dup {
			return
		}
		s.tauShares[m.Replica] = m.TauSig
		r.collectorTryProgress(s, m.View, idx)
	})
	if len(m.SigmaSig.Data) > 0 {
		r.enqueueShare(s, ShareSigma, digest, m.SigmaSig, func() {
			if m.View != r.view || r.inViewChange {
				return
			}
			if _, dup := s.sigmaShares[m.Replica]; dup {
				return
			}
			s.sigmaShares[m.Replica] = m.SigmaSig
			r.collectorTryProgress(s, m.View, idx)
		})
	}
	r.flushVerifyQ(s)
}

// observeFastSpread feeds the adaptive fast-path timer: collectors learn
// how long the σ quorum trails the τ quorum on their slots and extend the
// fallback timer to cover it (§V-E network profiling).
func (r *Replica) observeFastSpread(spread time.Duration) {
	if !r.fastSpreadSeen {
		r.fastSpread = spread
		r.fastSpreadSeen = true
		return
	}
	// EWMA with α = 1/4.
	r.fastSpread += (spread - r.fastSpread) / 4
}

// fastTimerDuration is the adaptive wait before abandoning the fast path:
// at least the configured floor, stretched to cover the recently observed
// share-arrival spread, and capped so crashed replicas cannot inflate
// latency unboundedly.
func (r *Replica) fastTimerDuration() time.Duration {
	d := r.cfg.FastPathTimeout
	if r.fastSpreadSeen {
		if adaptive := r.fastSpread * 2; adaptive > d {
			d = adaptive
		}
	}
	if limit := 6 * r.cfg.FastPathTimeout; d > limit {
		d = limit
	}
	return d
}

func (r *Replica) collectorTryProgress(s *slot, view uint64, idx int) {
	r.tracef("collector seq=%d idx=%d sigma=%d tau=%d fastSent=%v prepSent=%v",
		s.seq, idx, len(s.sigmaShares), len(s.tauShares), s.sentFastProof, s.sentPrepare)
	if !s.tauQuorumSeen && len(s.tauShares) >= r.cfg.QuorumSlow() {
		s.tauQuorumSeen = true
		s.tauQuorumAt = r.env.Now()
	}
	if s.tauQuorumSeen && len(s.sigmaShares) >= r.cfg.QuorumFast() {
		r.observeFastSpread(r.env.Now() - s.tauQuorumAt)
	}
	// Fast path: combine σ(h) once 3f+c+1 shares arrive. The flag is set
	// before the (possibly asynchronous) combination so re-entrant
	// progress calls cannot double-combine; shares in sigmaShares were
	// pairing-checked on arrival, so CombineVerified only fails on
	// internal errors, where the flag rolls back.
	if r.cfg.FastPath && !s.sentFastProof && len(s.sigmaShares) >= r.cfg.QuorumFast() {
		shares := sharesList(s.sigmaShares)
		s.sentFastProof = true
		if s.fastTimer != nil {
			s.fastTimer()
			s.fastTimer = nil
		}
		epoch := s.verifyEpoch
		r.csink.Combine(ShareSigma, append([]byte(nil), s.hash[:]...), shares, func(sig threshsig.Signature, err error) {
			cur, live := r.slots[s.seq]
			if !live || cur != s || s.verifyEpoch != epoch {
				return
			}
			if err != nil {
				s.sentFastProof = false
				return
			}
			if r.view != view || r.inViewChange {
				return
			}
			r.sendStaggered(s, idx, func() {
				msg := FullCommitProofMsg{Seq: s.seq, View: view, Sigma: sig}
				r.broadcast(msg)
				r.onFullCommitProof(r.id, msg)
			})
		})
		return
	}
	// Slow-path trigger: τ quorum but no σ quorum → wait for the fast
	// timer (skipped when the fast path is disabled), then send prepare,
	// staggered so redundant collectors only act if earlier ones stall
	// (§V-E; the primary activates last).
	if !s.sentPrepare && len(s.tauShares) >= r.cfg.QuorumSlow() {
		fire := func() {
			// A prepare already seen from another collector makes ours
			// redundant — but only a CURRENT-view prepare counts: stale
			// prepare evidence from an earlier view must not stop the slot
			// from re-preparing after a view change, or it deadlocks (the
			// chaos harness found exactly this under lossy links).
			if s.sentPrepare || s.sentFastProof || s.committed {
				return
			}
			if s.hasPrepare && s.prepareView >= view {
				return
			}
			shares := sharesList(s.tauShares)
			s.sentPrepare = true // optimistic; rolled back on combine error
			epoch := s.verifyEpoch
			r.csink.Combine(ShareTau, append([]byte(nil), s.hash[:]...), shares, func(sig threshsig.Signature, err error) {
				cur, live := r.slots[s.seq]
				if !live || cur != s || s.verifyEpoch != epoch {
					return
				}
				if err != nil {
					s.sentPrepare = false
					return
				}
				if r.view != view || r.inViewChange || s.committed {
					return
				}
				if r.cfg.FastPath {
					r.Metrics.FastPathDowngrades++
				}
				msg := PrepareMsg{Seq: s.seq, View: view, Tau: sig}
				r.broadcast(msg)
				r.onPrepare(r.id, msg)
			})
		}
		delay := time.Duration(idx) * r.cfg.CollectorStagger
		if r.cfg.FastPath {
			delay += r.fastTimerDuration()
		}
		if s.fastTimer == nil && !s.sentFastProof {
			if delay == 0 {
				fire()
				return
			}
			s.fastTimer = r.env.After(delay, func() {
				s.fastTimer = nil
				if r.cfg.FastPath && !s.committed && !s.sentFastProof {
					r.Metrics.CollectorTimeouts++
				}
				fire()
			})
		}
	}
}

// sendStaggered runs send immediately for the first collector and after
// idx*CollectorStagger for redundant collectors, cancelling if the slot
// commits meanwhile (§V: staggered collectors monitor in idle).
func (r *Replica) sendStaggered(s *slot, idx int, send func()) {
	if idx <= 0 || r.cfg.CollectorStagger <= 0 {
		send()
		return
	}
	delay := time.Duration(idx) * r.cfg.CollectorStagger
	s.staggerTimer = r.env.After(delay, func() {
		s.staggerTimer = nil
		if !s.committed {
			send()
		}
	})
}

func sharesList(m map[int]threshsig.Share) []threshsig.Share {
	out := make([]threshsig.Share, 0, len(m))
	for _, sh := range m {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signer < out[j].Signer })
	return out
}

func (r *Replica) onFullCommitProof(_ int, m FullCommitProofMsg) {
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if m.Seq > r.windowBase && m.Seq <= r.windowBase+r.cfg.Win {
			s.pendingFast = &m
			r.tryRejoinView(m.Seq, m.View)
		}
		return
	}
	if r.suite.Sigma.Verify(s.hash[:], m.Sigma) != nil {
		return
	}
	if r.inViewChange && m.View < r.view {
		r.rejoinView(m.View)
	}
	s.commitProof = &m
	s.commitProofView = m.View
	r.Metrics.FastCommits++
	// §V-F: a fast commit advances the window without a checkpoint quorum.
	if m.Seq > r.cfg.fastGateWindow() {
		if nls := m.Seq - r.cfg.fastGateWindow(); nls > r.windowBase {
			r.windowBase = nls
		}
	}
	r.commit(s, s.reqs)
}

// ---------------------------------------------------------------------------
// Linear-PBFT slow path: prepare → commit → full-commit-proof-slow.

func (r *Replica) onPrepare(_ int, m PrepareMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	s := r.getSlot(m.Seq)
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		return
	}
	if s.hasPrepare && s.prepareView >= m.View {
		// Already have an equal-or-higher prepare; still allowed to send
		// the commit share once.
	} else {
		if r.suite.Tau.Verify(s.hash[:], m.Tau) != nil {
			return
		}
		s.hasPrepare = true
		s.prepareView = m.View
		s.prepareTau = m.Tau
		s.prepareReqs = s.reqs
		s.prepareHash = s.hash
	}
	if s.committed || s.sentCommitShare {
		return
	}
	s.sentCommitShare = true
	share, err := r.keys.Tau.Sign(tauTauDigest(s.prepareTau))
	if err != nil {
		return
	}
	msg := CommitMsg{Seq: m.Seq, View: m.View, Replica: r.id, TauTau: share}
	sent := map[int]bool{}
	for _, c := range r.cfg.CCollectors(m.Seq, m.View) {
		if sent[c] {
			continue
		}
		sent[c] = true
		if c == r.id {
			r.onCommit(r.id, msg)
		} else {
			r.env.Send(c, msg)
		}
	}
}

func (r *Replica) onCommit(_ int, m CommitMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	idx := r.collectorIndex(m.Seq, m.View)
	if idx < 0 {
		return
	}
	s := r.getSlot(m.Seq)
	if s.collectorView != m.View || s.sentSlowProof || !s.hasPrepare {
		if !s.hasPrepare {
			return
		}
		if s.collectorView != m.View {
			return
		}
		if s.sentSlowProof {
			return
		}
	}
	if _, dup := s.tautauShares[m.Replica]; dup {
		return
	}
	r.stageShare(s, ShareTau, tauTauDigest(s.prepareTau), m.TauTau, func() {
		if m.View != r.view || r.inViewChange {
			return
		}
		if _, dup := s.tautauShares[m.Replica]; dup {
			return
		}
		s.tautauShares[m.Replica] = m.TauTau
		r.trySlowProof(s, m.View)
	})
}

// trySlowProof combines and broadcasts the slow-path commit certificate
// τ(τ(h)) once 2f+c+1 commit shares are in (§V-E), staggered across the
// redundant collectors.
func (r *Replica) trySlowProof(s *slot, view uint64) {
	if len(s.tautauShares) < r.cfg.QuorumSlow() || s.sentSlowProof {
		return
	}
	s.sentSlowProof = true
	fire := func() {
		if s.committed || s.commitSlow != nil {
			return // another collector's proof already landed
		}
		epoch := s.verifyEpoch
		r.csink.Combine(ShareTau, tauTauDigest(s.prepareTau), sharesList(s.tautauShares), func(sig threshsig.Signature, err error) {
			cur, live := r.slots[s.seq]
			if !live || cur != s || s.verifyEpoch != epoch || err != nil {
				return
			}
			if s.committed || s.commitSlow != nil || r.view != view || r.inViewChange {
				return
			}
			msg := FullCommitProofSlowMsg{Seq: s.seq, View: view, Tau: s.prepareTau, TauTau: sig}
			r.broadcast(msg)
			r.onFullCommitProofSlow(r.id, msg)
		})
	}
	idx := r.collectorIndex(s.seq, view)
	if idx <= 0 || r.cfg.CollectorStagger <= 0 {
		fire()
		return
	}
	r.env.After(time.Duration(idx)*r.cfg.CollectorStagger, fire)
}

func (r *Replica) onFullCommitProofSlow(_ int, m FullCommitProofSlowMsg) {
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if m.Seq > r.windowBase && m.Seq <= r.windowBase+r.cfg.Win {
			s.pendingSlow = &m
			r.tryRejoinView(m.Seq, m.View)
		}
		return
	}
	// Verify the chain: τ(h) over our block hash, then τ(τ(h)).
	if r.suite.Tau.Verify(s.hash[:], m.Tau) != nil {
		return
	}
	if r.suite.Tau.Verify(tauTauDigest(m.Tau), m.TauTau) != nil {
		return
	}
	if r.inViewChange && m.View < r.view {
		r.rejoinView(m.View)
	}
	s.commitSlow = &m
	s.commitSlowView = m.View
	if !s.hasPrepare || s.prepareView < m.View {
		s.hasPrepare = true
		s.prepareView = m.View
		s.prepareTau = m.Tau
		s.prepareReqs = s.reqs
		s.prepareHash = s.hash
	}
	r.Metrics.SlowCommits++
	r.commit(s, s.reqs)
}

// ---------------------------------------------------------------------------
// Commit, execution and acknowledgement.

func (r *Replica) commit(s *slot, reqs []Request) {
	if s.committed {
		return
	}
	s.committed = true
	s.committedReqs = reqs
	if s.fastTimer != nil {
		s.fastTimer()
		s.fastTimer = nil
	}
	if s.staggerTimer != nil {
		s.staggerTimer()
		s.staggerTimer = nil
	}
	r.tracef("commit seq=%d (%d reqs)", s.seq, len(reqs))
	r.executeReady()
	r.armProgressTimer()
	r.checkGap()
}

// checkGap detects an execution gap — a committed block above an
// uncommitted one — and arms the repair timer (§II re-transmit layer).
func (r *Replica) checkGap() {
	if r.gapTimer != nil || r.cfg.GapRepairTimeout <= 0 {
		return
	}
	if !r.hasGap() {
		return
	}
	r.gapTimer = r.env.After(r.cfg.GapRepairTimeout, func() {
		r.gapTimer = nil
		if !r.hasGap() {
			r.gapAttempt = 0
			return
		}
		missing := r.lastExecuted + 1
		// Rotate through peers across attempts.
		peer := (int(missing)+r.gapAttempt)%r.cfg.N() + 1
		if peer == r.id {
			peer = peer%r.cfg.N() + 1
		}
		r.gapAttempt++
		r.tracef("gap repair: fetching decision %d from %d", missing, peer)
		r.env.Send(peer, FetchCommitMsg{Replica: r.id, Seq: missing})
		r.checkGap()
	})
}

// hasGap reports whether execution is stalled behind a committed block.
func (r *Replica) hasGap() bool {
	next := r.lastExecuted + 1
	if s, ok := r.slots[next]; ok && s.committed {
		return false // executeReady will handle it
	}
	for seq, s := range r.slots {
		if seq > next && s.committed {
			return true
		}
	}
	return r.lastStable > r.lastExecuted
}

func (r *Replica) onFetchCommit(_ int, m FetchCommitMsg) {
	s, ok := r.slots[m.Seq]
	if !ok || !s.committed {
		// Possibly garbage-collected: offer the snapshot instead.
		if r.SnapshotSeq() >= m.Seq {
			r.onFetchState(m.Replica, FetchStateMsg{Replica: m.Replica, Seq: m.Seq})
		}
		return
	}
	info := CommitInfoMsg{Seq: m.Seq, Reqs: s.committedReqs}
	switch {
	case s.commitProof != nil:
		info.HasFast = true
		info.View = s.commitProofView
		info.Sigma = s.commitProof.Sigma
	case s.commitSlow != nil:
		info.View = s.commitSlowView
		info.Tau = s.commitSlow.Tau
		info.TauTau = s.commitSlow.TauTau
	default:
		// Committed through a new-view decision without a retained
		// certificate; the requester will try another peer.
		return
	}
	r.env.Send(m.Replica, info)
}

func (r *Replica) onCommitInfo(_ int, m CommitInfoMsg) {
	if m.Seq <= r.lastExecuted {
		return
	}
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	h := BlockHash(m.Seq, m.View, m.Reqs)
	if m.HasFast {
		if r.suite.Sigma.Verify(h[:], m.Sigma) != nil {
			return
		}
		s.commitProof = &FullCommitProofMsg{Seq: m.Seq, View: m.View, Sigma: m.Sigma}
		s.commitProofView = m.View
	} else {
		if r.suite.Tau.Verify(h[:], m.Tau) != nil {
			return
		}
		if r.suite.Tau.Verify(tauTauDigest(m.Tau), m.TauTau) != nil {
			return
		}
		s.commitSlow = &FullCommitProofSlowMsg{Seq: m.Seq, View: m.View, Tau: m.Tau, TauTau: m.TauTau}
		s.commitSlowView = m.View
	}
	if !s.hasPrePrepare {
		s.hasPrePrepare = true
		s.prePrepareView = m.View
	}
	s.reqs = m.Reqs
	s.hash = h
	r.Metrics.GapRepairs++
	r.commit(s, m.Reqs)
}

// executeReady executes committed blocks in sequence order (§V-D execute
// trigger).
func (r *Replica) executeReady() {
	advanced := false
	defer func() {
		if advanced {
			r.resetProgressTimer()
			r.checkGap()
			r.dropStaleFetch()
		}
	}()
	for {
		next := r.lastExecuted + 1
		s, ok := r.slots[next]
		if !ok || !s.committed || s.executed {
			return
		}
		advanced = true
		// Exactly-once execution: the same request can legitimately commit
		// at two sequence numbers (a retried request re-proposed across a
		// view change, or a Byzantine primary double-proposing); replicas
		// skip the second occurrence deterministically, keyed on the reply
		// cache — the classic PBFT last-reply-timestamp rule.
		s.execReqs = s.committedReqs[:0:0]
		for _, req := range s.committedReqs {
			if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
				r.Metrics.DedupSkips++
				continue
			}
			dup := false
			for _, e := range s.execReqs {
				if e.Client == req.Client && e.Timestamp >= req.Timestamp {
					dup = true
					break
				}
			}
			if dup {
				r.Metrics.DedupSkips++
				continue
			}
			s.execReqs = append(s.execReqs, req)
		}
		ops := make([][]byte, len(s.execReqs))
		for i, req := range s.execReqs {
			ops[i] = req.Op
		}
		results := r.app.ExecuteBlock(next, ops)
		s.executed = true
		r.lastExecuted = next
		r.Metrics.Executions++
		if tp, ok := r.app.(TwoPhaser); ok {
			r.Metrics.TxPrepares, r.Metrics.TxCommits, r.Metrics.TxAborts = tp.TxStats()
		}
		if len(s.committedReqs) == 0 {
			r.Metrics.NullBlocks++
		}
		if r.store != nil {
			if err := r.store.Append(next, EncodeBlockPayload(s.execReqs, results)); err != nil {
				r.tracef("block store append failed: %v", err)
			}
		}
		digest := r.app.Digest()

		// Cache replies and serve direct-path replies.
		for i, req := range s.execReqs {
			r.replyCache[req.Client] = replyCacheEntry{
				timestamp: req.Timestamp, seq: next, l: i, val: results[i],
			}
			// The reply cache now covers every timestamp ≤ this one, so the
			// `seen` dedup entry is redundant — drop it. Without this GC,
			// seen grows one entry per client forever (unbounded memory
			// under churning client populations); with it, seen holds only
			// clients with genuinely in-flight requests.
			if ts, ok := r.seen[req.Client]; ok && ts <= req.Timestamp {
				delete(r.seen, req.Client)
			}
			if w, ok := r.watch[req.Client]; ok && w.ts <= req.Timestamp {
				delete(r.watch, req.Client)
			}
			if !r.cfg.ExecCollectors || req.Direct {
				r.env.Send(req.Client, ReplyMsg{
					Seq: next, L: i, Replica: r.id, View: r.view,
					Client: req.Client, Timestamp: req.Timestamp, Val: results[i],
				})
			}
		}
		// Drop executed requests retained for future primaries.
		if len(r.pending) > 0 {
			kept := r.pending[:0]
			for _, req := range r.pending {
				if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
					r.pendingIdxDel(req)
					continue
				}
				kept = append(kept, req)
			}
			r.pending = kept
		}

		// Sign-state phase (§V-D) — only useful when exec collectors are
		// enabled.
		if r.cfg.ExecCollectors {
			share, err := r.keys.Pi.Sign(stateSigDigest(next, digest))
			if err == nil {
				msg := SignStateMsg{Seq: next, Replica: r.id, Digest: digest, PiSig: share}
				for _, c := range r.cfg.ECollectors(next, 0) {
					if c == r.id {
						r.onSignState(r.id, msg)
					} else {
						r.env.Send(c, msg)
					}
				}
			}
			// If this replica is an E-collector that combined the π
			// certificate before executing locally, release the acks now.
			r.sendExecuteAcks(next)
			// Fallback: if every E-collector of this sequence is crashed,
			// serve clients directly after a timeout so the single
			// correct-collector liveness assumption degrades gracefully.
			if r.cfg.ExecFallbackTimeout > 0 && len(s.execReqs) > 0 {
				seq := next
				r.env.After(r.cfg.ExecFallbackTimeout, func() {
					r.execFallback(seq)
				})
			}
		}

		// Periodic checkpoint (§V-F). Capture the certified snapshot NOW,
		// while application state and reply table are exactly at this
		// sequence; the π shares sign its Merkle root, which commits to
		// both, so a single honest snapshot server suffices for verified
		// state transfer. The stable certificate adopts the capture when
		// it arrives.
		if next%r.cfg.checkpointEvery() == 0 {
			cs, err := r.buildSnapshot(next, digest)
			if err != nil {
				// The certified root cannot be computed without the
				// snapshot bytes, so this replica abstains from this
				// checkpoint (the π quorum needs only f+1 of n; a
				// deterministic app's Snapshot failing on a quorum of
				// replicas is an application bug, not a protocol state).
				r.tracef("checkpoint snapshot at %d failed: %v", next, err)
			} else {
				r.pendingSnap[next] = cs
				r.initiateCheckpoint(next, cs.Root())
			}
		}
	}
}

func (r *Replica) isECollector(seq uint64) bool {
	for _, c := range r.cfg.ECollectors(seq, 0) {
		if c == r.id {
			return true
		}
	}
	return false
}

func (r *Replica) onSignState(_ int, m SignStateMsg) {
	if !r.isECollector(m.Seq) {
		return
	}
	s := r.getSlot(m.Seq)
	if s.sentExecCert {
		return
	}
	// Group shares by signed digest: only a digest f+1 distinct replicas
	// vouch for (at least one honest) can be certified, so a Byzantine
	// replica's signed-garbage digest can never block or hijack the cert.
	// One share slot per replica per sequence ACROSS groups — checked
	// before the expensive share verification — bounds the table at n
	// entries and keeps duplicate deliveries cheap; a Byzantine
	// double-voter merely wastes its slot on its first digest.
	if s.piShares == nil {
		s.piShares = make(map[string]map[int]threshsig.Share)
	}
	for _, g := range s.piShares {
		if _, dup := g[m.Replica]; dup {
			return
		}
	}
	r.stageShare(s, SharePi, stateSigDigest(m.Seq, m.Digest), m.PiSig, func() {
		if s.sentExecCert {
			return
		}
		for _, g := range s.piShares {
			if _, dup := g[m.Replica]; dup {
				return
			}
		}
		group := s.piShares[string(m.Digest)]
		if group == nil {
			group = make(map[int]threshsig.Share)
			s.piShares[string(m.Digest)] = group
		}
		group[m.Replica] = m.PiSig
		if len(group) >= r.cfg.QuorumExec() {
			r.tryExecCert(s, m.Seq, m.Digest, sharesList(group))
		}
	})
}

// tryExecCert combines and broadcasts the f+1 execution certificate π(d)
// for an executed sequence (§V-D), staggered across redundant
// E-collectors.
func (r *Replica) tryExecCert(s *slot, seq uint64, digest []byte, quorum []threshsig.Share) {
	s.sentExecCert = true
	s.execDigest = digest
	fire := func() {
		if s.execCertSeen {
			return // another E-collector already certified this sequence
		}
		r.csink.Combine(SharePi, stateSigDigest(seq, digest), quorum, func(pi threshsig.Signature, err error) {
			cur, live := r.slots[seq]
			if !live || cur != s || err != nil || s.execCertSeen {
				return
			}
			s.execPi = pi
			r.broadcast(FullExecuteProofMsg{Seq: seq, Digest: digest, Pi: pi})
			r.sendExecuteAcks(seq)
		})
	}
	// Stagger redundant E-collectors like C-collectors (§V).
	idx := -1
	for i, c := range r.cfg.ECollectors(seq, 0) {
		if c == r.id {
			idx = i
			break
		}
	}
	if idx <= 0 || r.cfg.CollectorStagger <= 0 {
		fire()
		return
	}
	r.env.After(time.Duration(idx)*r.cfg.CollectorStagger, fire)
}

// sendExecuteAcks sends each client of block seq its single execute-ack
// with a Merkle proof (§V-D). It requires both the combined π certificate
// and local execution of seq; whichever happens last triggers the acks
// (executeReady re-invokes it after executing).
func (r *Replica) sendExecuteAcks(seq uint64) {
	s, ok := r.slots[seq]
	if !ok || s.execAcked || len(s.execPi.Data) == 0 || r.lastExecuted < seq {
		return
	}
	s.execAcked = true
	digest, pi := s.execDigest, s.execPi
	for i, req := range s.execReqs {
		if req.Direct {
			continue // direct requests already got PBFT-style replies
		}
		proof, err := r.app.ProveOperation(seq, i)
		if err != nil {
			r.tracef("prove op %d/%d: %v", seq, i, err)
			continue
		}
		ent, ok := r.replyCache[req.Client]
		if !ok || ent.seq != seq {
			continue
		}
		r.env.Send(req.Client, ExecuteAckMsg{
			Seq: seq, L: i, Val: ent.val,
			Client: req.Client, Timestamp: req.Timestamp, View: r.view,
			Digest: digest, Pi: pi, Proof: proof,
		})
	}
}

// execFallback sends direct replies to the clients of block seq when no
// full-execute-proof arrived in time (crashed E-collectors).
func (r *Replica) execFallback(seq uint64) {
	s, ok := r.slots[seq]
	if !ok || !s.executed || s.execCertSeen {
		return
	}
	r.Metrics.ExecFallbacks++
	for i, req := range s.execReqs {
		ent, ok := r.replyCache[req.Client]
		if !ok || ent.seq != seq || ent.timestamp != req.Timestamp {
			continue
		}
		r.env.Send(req.Client, ReplyMsg{
			Seq: seq, L: i, Replica: r.id, View: r.view,
			Client: req.Client, Timestamp: req.Timestamp, Val: ent.val,
		})
	}
}

func (r *Replica) onFullExecuteProof(_ int, m FullExecuteProofMsg) {
	if r.suite.Pi.Verify(stateSigDigest(m.Seq, m.Digest), m.Pi) != nil {
		return
	}
	if s, ok := r.slots[m.Seq]; ok {
		s.execCertSeen = true
	}
	// Execution certificates cover only the application digest; checkpoint
	// stability now requires the certified execution-state root (which
	// also commits the last-reply table), carried by checkpoint shares —
	// the two certificate families are domain-separated and cannot stand
	// in for each other.
}

// ---------------------------------------------------------------------------
// Checkpoints, garbage collection, state transfer.

// initiateCheckpoint broadcasts this replica's π share over the certified
// execution-state root at a checkpoint sequence. Shares go to all replicas
// so everyone can assemble the stable certificate locally even when
// collectors are crashed; at one checkpoint per win/2 blocks the quadratic
// cost is amortized away (§V-F).
func (r *Replica) initiateCheckpoint(seq uint64, root []byte) {
	share, err := r.keys.Pi.Sign(CheckpointSigDigest(seq, root))
	if err != nil {
		return
	}
	msg := CheckpointShareMsg{Seq: seq, Replica: r.id, Digest: root, PiSig: share}
	r.broadcast(msg)
	r.onCheckpointShare(r.id, msg)
}

func (r *Replica) onCheckpointShare(_ int, m CheckpointShareMsg) {
	if m.Seq <= r.lastStable {
		return
	}
	byDigest := r.ckptShares[m.Seq]
	if byDigest == nil {
		byDigest = make(map[string]map[int]threshsig.Share)
		r.ckptShares[m.Seq] = byDigest
	}
	// One share slot per replica per sequence across digest groups (see
	// onSignState): bounds the table at n entries and rejects duplicate
	// deliveries before the expensive share verification.
	for _, g := range byDigest {
		if _, dup := g[m.Replica]; dup {
			return
		}
	}
	// Checkpoint shares are replica-level state (slots may already be
	// GC'd at the checkpoint sequence), so they stage one message at a
	// time through the sink rather than the per-slot batch queue; at one
	// checkpoint per win/2 blocks the volume is negligible.
	job := VerifyJob{Kind: SharePi, Digest: CheckpointSigDigest(m.Seq, m.Digest), Shares: []threshsig.Share{m.PiSig}}
	r.csink.VerifyShares([]VerifyJob{job}, func(ok [][]threshsig.Share) {
		if len(ok[0]) == 0 {
			r.Metrics.BadShares++
			return
		}
		if m.Seq <= r.lastStable {
			return // stabilized while the share was in flight
		}
		byDigest := r.ckptShares[m.Seq]
		if byDigest == nil {
			byDigest = make(map[string]map[int]threshsig.Share)
			r.ckptShares[m.Seq] = byDigest
		}
		for _, g := range byDigest {
			if _, dup := g[m.Replica]; dup {
				return
			}
		}
		group := byDigest[string(m.Digest)]
		if group == nil {
			group = make(map[int]threshsig.Share)
			byDigest[string(m.Digest)] = group
		}
		group[m.Replica] = m.PiSig
		if len(group) < r.cfg.QuorumExec() {
			return
		}
		r.csink.Combine(SharePi, CheckpointSigDigest(m.Seq, m.Digest), sharesList(group), func(pi threshsig.Signature, err error) {
			if err != nil || m.Seq <= r.lastStable {
				return
			}
			r.recordStable(m.Seq, m.Digest, pi)
		})
	})
}

func (r *Replica) onCheckpointCert(_ int, m CheckpointCertMsg) {
	if m.Seq <= r.lastStable {
		return
	}
	if r.suite.Pi.Verify(CheckpointSigDigest(m.Seq, m.Digest), m.Pi) != nil {
		return
	}
	r.recordStable(m.Seq, m.Digest, m.Pi)
	if r.lastExecuted < m.Seq {
		// We are behind a stable checkpoint: fetch state if the gap is
		// not recoverable through the normal pipeline.
		r.maybeFetchState(m.Seq)
	}
}

func (r *Replica) recordStable(seq uint64, digest []byte, pi threshsig.Signature) {
	if seq <= r.lastStable && r.stableDigest != nil {
		// Even when the checkpoint itself is old news, pending captures
		// at or below the stable frontier are dead. A checkpoint whose
		// sequence was skipped by state-transfer catch-up re-enters here
		// (finishStateFetch → recordStable at the transferred seq) and
		// used to leak its captured snapshot forever: the GC below only
		// ran on the first recording, which had returned early while the
		// replica was still behind.
		r.gcPendingSnap(r.lastStable)
		return
	}
	r.Metrics.Checkpoints++
	r.lastStable = seq
	if seq > r.windowBase {
		r.windowBase = seq
	}
	r.stableDigest = digest
	r.stablePi = pi
	if r.lastExecuted >= seq {
		// Adopt the certified snapshot captured when seq executed; if none
		// exists (restart, state transfer) capture now — but only when
		// execution has not pipelined past seq, or current state would be
		// mislabeled with the older certified digest and rejected by every
		// receiver. A capture whose root disagrees with the quorum-proven
		// digest must not be served: this replica has diverged and its
		// chunks would (correctly) be blamed by every fetcher.
		cs, ok := r.pendingSnap[seq]
		if !ok && r.lastExecuted == seq && r.SnapshotSeq() < seq {
			if built, err := r.buildSnapshot(seq, r.app.Digest()); err == nil {
				cs, ok = built, true
			}
		}
		if ok {
			if bytes.Equal(cs.Root(), digest) {
				cs.Pi = pi
				r.adoptSnapshot(cs)
			} else {
				r.tracef("checkpoint %d: local root disagrees with certified digest", seq)
			}
		}
		r.app.GarbageCollect(seq)
	}
	// Captures at or below the stable point are dead regardless of whether
	// this replica adopted one: unconditional, or a capture whose
	// stabilization is learned while the replica is behind (and whose
	// sequence is then skipped by catch-up) is never collected.
	r.gcPendingSnap(seq)
	// Drop slot state below the stable point — but never ahead of local
	// execution, or committed-but-unexecuted blocks would be lost.
	gcTo := seq
	if r.lastExecuted < gcTo {
		gcTo = r.lastExecuted
	}
	for s := range r.slots {
		if s <= gcTo {
			delete(r.slots, s)
		}
	}
	for s := range r.ckptShares {
		if s <= seq {
			delete(r.ckptShares, s)
		}
	}
	for s := range r.directReq {
		if s <= gcTo {
			delete(r.directReq, s)
		}
	}
	if r.lastExecuted < seq {
		// The network proved a stable state we have not reached: catch up
		// via state transfer (§VIII).
		r.maybeFetchState(seq)
	}
}

// buildSnapshot captures the certified execution state at seq: the
// application snapshot plus the canonical last-reply table, chunked and
// Merkle-committed. Valid only while app state and reply table are exactly
// at seq. Applications exposing the incremental capture path
// (ChunkedSnapshotter) are captured chunk-by-chunk through the capture
// cache: clean chunks (recognized by slice identity, per the interface
// contract) reuse their previous leaf hashes, so the capture stall is
// proportional to writes since the last checkpoint, not to state size.
func (r *Replica) buildSnapshot(seq uint64, appDigest []byte) (*CertifiedSnapshot, error) {
	if ca, ok := r.app.(ChunkedSnapshotter); ok {
		chunks, supported, err := ca.SnapshotChunks()
		if err != nil {
			return nil, err
		}
		if supported {
			if r.capCache == nil {
				r.capCache = &CaptureCache{}
			}
			cs := NewCertifiedSnapshotChunked(seq, appDigest, chunks, encodeReplyTable(r.replyCache), r.capCache)
			r.Metrics.CheckpointDirtyChunks += uint64(r.capCache.DirtyChunks())
			return cs, nil
		}
	}
	appSnap, err := r.app.Snapshot()
	if err != nil {
		return nil, err
	}
	return NewCertifiedSnapshot(seq, appDigest, appSnap, encodeReplyTable(r.replyCache)), nil
}

// snapGeneration is one retained certified snapshot plus the delta that
// produced it: the 1-based chunk indexes whose commitment leaves differ
// from the chain predecessor's. deltaKnown is false when the predecessor
// was unknown at adoption (first checkpoint, restart, state transfer) —
// such a generation still serves chunks and acts as a delta BASE, but
// cannot appear in the middle of a delta computation.
type snapGeneration struct {
	cs         *CertifiedSnapshot
	delta      []int
	deltaKnown bool
}

// curSnap returns the newest retained certified snapshot (nil when none):
// the snapshot advertised to fetchers.
func (r *Replica) curSnap() *CertifiedSnapshot {
	if len(r.snapGens) == 0 {
		return nil
	}
	return r.snapGens[len(r.snapGens)-1].cs
}

// genAt returns the retained generation at exactly seq, or nil.
func (r *Replica) genAt(seq uint64) *snapGeneration {
	for _, g := range r.snapGens {
		if g.cs.Seq == seq {
			return g
		}
	}
	return nil
}

// retainsSnapshot reports whether the generation at seq is still within
// the retention chain.
func (r *Replica) retainsSnapshot(seq uint64) bool { return r.genAt(seq) != nil }

// deltaSince returns the chunk indexes (1-based, in the CURRENT
// snapshot's numbering, sorted) a fetcher holding the complete retained
// generation at base must fetch to reach the current snapshot: the union
// of every later generation's delta, clipped to the current chunk count
// (indexes past it no longer exist). ok is false when base is not
// retained or an intermediate delta is unknown — the fetcher then needs
// a full transfer. Chunk indexes are stable across generations (leaf i
// commits chunk i), so an index absent from every delta has an unchanged
// leaf, and the base's copy of that chunk is bit-identical to the
// current one.
func (r *Replica) deltaSince(base uint64) ([]int, bool) {
	bi := -1
	for i, g := range r.snapGens {
		if g.cs.Seq == base {
			bi = i
			break
		}
	}
	if bi < 0 {
		return nil, false
	}
	cur := r.curSnap()
	n := cur.Header.NumChunks()
	set := make(map[int]bool)
	for _, g := range r.snapGens[bi+1:] {
		if !g.deltaKnown {
			return nil, false
		}
		for _, idx := range g.delta {
			if idx >= 1 && idx <= n {
				set[idx] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for idx := range set {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, true
}

// snapshotDelta lists the 1-based chunk indexes whose commitment leaves
// differ between a snapshot and its successor: common indexes whose leaf
// hashes changed, plus every index the successor grew past the
// predecessor. O(chunks) hash comparisons; no chunk bytes are touched.
func snapshotDelta(prev, cur *CertifiedSnapshot) []int {
	np, nc := prev.Header.NumChunks(), cur.Header.NumChunks()
	common := np
	if nc < common {
		common = nc
	}
	var delta []int
	for i := 1; i <= common; i++ {
		ph, perr := prev.LeafHashAt(i)
		ch, cerr := cur.LeafHashAt(i)
		if perr != nil || cerr != nil || ph != ch {
			delta = append(delta, i)
		}
	}
	for i := common + 1; i <= nc; i++ {
		delta = append(delta, i)
	}
	return delta
}

// gcPendingSnap drops pending checkpoint captures at or below the stable
// frontier. Must run on EVERY stability recording — including re-entries
// for already-stable sequences — so captures whose checkpoint was skipped
// by state-transfer catch-up cannot leak.
func (r *Replica) gcPendingSnap(stable uint64) {
	for s := range r.pendingSnap {
		if s <= stable {
			delete(r.pendingSnap, s)
		}
	}
}

// adoptSnapshot appends a stable certified snapshot to the retention
// chain and hands it off for durable persistence so a restarted replica
// can serve state transfer immediately. In-memory serving arms at once
// (the capture is already chunked and Merkle-committed); the delta
// against the previous generation is computed here (leaf-hash diff) so
// laggards can fetch increments. Persistence goes through the async
// SnapshotSink when one is installed — encode+write of a large state
// would otherwise stall the event loop every win/2 executions — and
// falls back to the synchronous SnapshotStore path otherwise. The sink's
// completion callback arms the restart-survivable serving point
// (durableSnap) once the bytes are actually on disk, but only while the
// persisted generation is still retained: a slow persist completing
// after retention evicted its generation must not advertise a serving
// point whose chunks (and, after a later prune, whose durable file) are
// gone.
func (r *Replica) adoptSnapshot(cs *CertifiedSnapshot) {
	cur := r.curSnap()
	if cur != nil && cur.Seq >= cs.Seq {
		return
	}
	gen := &snapGeneration{cs: cs}
	if cur != nil {
		gen.delta = snapshotDelta(cur, cs)
		gen.deltaKnown = true
	}
	r.snapGens = append(r.snapGens, gen)
	if keep := r.cfg.snapshotRetain(); len(r.snapGens) > keep {
		// Copy into a fresh slice so the shrinking window cannot pin
		// evicted generations through the old backing array.
		trimmed := make([]*snapGeneration, keep)
		copy(trimmed, r.snapGens[len(r.snapGens)-keep:])
		r.snapGens = trimmed
	}
	keepFrom := r.snapGens[0].cs.Seq
	if r.sink != nil {
		seq := cs.Seq
		r.sink.PersistSnapshot(cs, keepFrom, func(err error) {
			if err != nil {
				r.tracef("async snapshot persist %d failed: %v", seq, err)
				return
			}
			if seq > r.durableSnap && r.retainsSnapshot(seq) {
				r.durableSnap = seq
				r.Metrics.SnapshotPersists++
			}
		})
		return
	}
	if ss, ok := r.store.(SnapshotStore); ok && r.store != nil {
		if err := PersistCertified(ss, cs, keepFrom); err != nil {
			r.tracef("persisting snapshot %d failed: %v", cs.Seq, err)
		} else if cs.Seq > r.durableSnap {
			r.durableSnap = cs.Seq
			r.Metrics.SnapshotPersists++
		}
	}
}

// SetSnapshotSink installs the asynchronous snapshot persistence hook.
// Call before the replica starts processing messages.
func (r *Replica) SetSnapshotSink(s SnapshotSink) { r.sink = s }

// DurableSnapshotSeq reports the highest snapshot sequence known to be
// durably persisted (0 when none): the serving point that survives a
// restart, as opposed to SnapshotSeq, which arms immediately on adoption.
func (r *Replica) DurableSnapshotSeq() uint64 { return r.durableSnap }

// SnapshotSeq reports the sequence of the newest certified snapshot this
// replica can serve (0 when none).
func (r *Replica) SnapshotSeq() uint64 {
	cs := r.curSnap()
	if cs == nil {
		return 0
	}
	return cs.Seq
}

// RetainedSnapshotSeqs lists the sequences of every retained snapshot
// generation, oldest first — observability for tests and operators.
func (r *Replica) RetainedSnapshotSeqs() []uint64 {
	out := make([]uint64, len(r.snapGens))
	for i, g := range r.snapGens {
		out[i] = g.cs.Seq
	}
	return out
}

// SnapshotBlameCounts reports, per server id, how many pieces of snapshot
// material from that server failed verification against a certified root.
func (r *Replica) SnapshotBlameCounts() map[int]int {
	out := make(map[int]int, len(r.snapshotBlames))
	for id, n := range r.snapshotBlames {
		out[id] = n
	}
	return out
}

// fetchTimeoutStrikes is how many consecutive unanswered chunk requests
// exclude a server from the rest of the transfer (soft exclusion — no
// tamper blame is recorded, but a slow-trickling server stops consuming
// window slots the way a tampering one stops serving chunks at all).
const fetchTimeoutStrikes = 3

// fetchStats accumulates one server's observed state-transfer service
// quality for the window scheduler: outstanding load, consecutive
// timeouts, and an EWMA of request→verified-chunk latency. Faster
// servers absorb more of the window; unresponsive ones lose share and
// are eventually excluded.
type fetchStats struct {
	outstanding int
	timeouts    int // consecutive unanswered requests
	ewma        time.Duration
	ewmaSet     bool
}

// observe folds one request→verified-chunk latency into the EWMA (α=1/4).
func (st *fetchStats) observe(d time.Duration) {
	if !st.ewmaSet {
		st.ewma, st.ewmaSet = d, true
		return
	}
	st.ewma += (d - st.ewma) / 4
}

// score ranks observed service quality (lower is better). Unknown
// servers score zero so every peer gets probed; each consecutive timeout
// doubles the effective latency, steering the window away from
// slow-trickling servers well before the exclusion threshold.
func (st *fetchStats) score() time.Duration {
	s := st.ewma
	strikes := st.timeouts
	if strikes > 8 {
		strikes = 8
	}
	for i := 0; i < strikes; i++ {
		s = 2*s + 10*time.Millisecond
	}
	return s
}

// chunkReq is one in-flight chunk request of the bounded window.
type chunkReq struct {
	server int
	sentAt time.Duration
}

// stateFetch tracks one in-progress chunked state transfer.
type stateFetch struct {
	target uint64 // minimum acceptable snapshot sequence
	// Meta collection: competing verified metas gathered for a short
	// window before the transfer commits to the HIGHEST certified
	// sequence among them — a Byzantine server racing a stale-but-valid
	// meta can no longer steer the transfer by answering first.
	bestMeta  *SnapshotMetaMsg
	metaTimer func() // cancel
	// Filled once a meta is adopted:
	seq     uint64
	root    []byte
	pi      threshsig.Signature
	header  SnapshotHeader
	chunks  [][]byte
	missing int
	next    int // refill scan cursor (1-based chunk index)
	// Delta-transfer state. prefilled lists the chunk indexes seeded
	// from a locally held base instead of fetched; deltaBase is that
	// base's sequence (0 = full transfer). The delta fields of a meta
	// ride OUTSIDE the π-certified root, so prefilled chunks are only
	// trusted once the fully assembled snapshot reproduces the certified
	// root (finishStateFetch); metaFrom remembers who supplied the delta
	// list so a mismatch blames the right server. fetched counts chunks
	// verified over the wire this transfer — the progress a restart
	// would discard.
	prefilled []int
	deltaBase uint64
	metaFrom  int
	fetched   int
	// bestFrom is the sender of bestMeta (meta under collection).
	bestFrom int
	// inflight is the bounded request window: chunk index → outstanding
	// request. Wiped whole when a newer meta restarts the transfer, so
	// stale accounting can never leak into the new window.
	inflight map[int]chunkReq
	// servers is the per-server accounting the scheduler steers by.
	servers map[int]*fetchStats
	// blamed servers are excluded from further requests this transfer.
	blamed  map[int]bool
	attempt int
	// lastProgress is when the transfer last advanced (created, meta
	// accepted, or a chunk verified): the signal separating a healthy
	// long transfer from a stalled one.
	lastProgress time.Duration
	// svc is the transfer-wide request→verified-chunk latency EWMA: the
	// retry deadline's fallback before a specific server's own EWMA is
	// seeded (early in a transfer the queue tail behind a full window
	// easily exceeds any fixed timeout; expiring it would churn).
	svc    time.Duration
	svcSet bool
	cancel func() // whole-transfer retry timer
	pacer  func() // per-chunk retry scan timer
}

// stats returns the accounting entry for a server, creating it lazily.
func (f *stateFetch) stats(id int) *fetchStats {
	st, ok := f.servers[id]
	if !ok {
		st = &fetchStats{}
		f.servers[id] = st
	}
	return st
}

// stopTimers cancels every timer owned by the transfer.
func (f *stateFetch) stopTimers() {
	if f.cancel != nil {
		f.cancel()
		f.cancel = nil
	}
	if f.pacer != nil {
		f.pacer()
		f.pacer = nil
	}
	if f.metaTimer != nil {
		f.metaTimer()
		f.metaTimer = nil
	}
}

// fetchPeers lists the servers still eligible for this transfer. If every
// peer has been excluded the set resets: with at most f Byzantine servers
// a full exclusion list means transient corruption or loss, not a hostile
// majority. The reset also forgives timeout strikes so every server gets
// a fresh probe instead of being instantly re-excluded.
func (r *Replica) fetchPeers(f *stateFetch) []int {
	peers := make([]int, 0, r.cfg.N()-1)
	for id := 1; id <= r.cfg.N(); id++ {
		if id != r.id && !f.blamed[id] {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		f.blamed = make(map[int]bool)
		for _, st := range f.servers {
			st.timeouts = 0
		}
		for id := 1; id <= r.cfg.N(); id++ {
			if id != r.id {
				peers = append(peers, id)
			}
		}
	}
	return peers
}

// blameSnapshotServer records a server whose snapshot material failed
// verification against the certified root (§VIII: any single honest server
// suffices; a tampering one is excluded and provably at fault, since
// correct material is Merkle-provable against a threshold-signed root).
func (r *Replica) blameSnapshotServer(f *stateFetch, id int, why string) {
	r.tracef("blaming snapshot server %d: %s", id, why)
	f.blamed[id] = true
	r.snapshotBlames[id]++
	r.Metrics.SnapshotBlames++
}

func (r *Replica) maybeFetchState(target uint64) {
	if r.lastExecuted >= target {
		return
	}
	if r.fetch != nil {
		if target > r.fetch.target {
			r.fetch.target = target
		}
		return
	}
	r.fetch = &stateFetch{
		target:       target,
		blamed:       make(map[int]bool),
		servers:      make(map[int]*fetchStats),
		lastProgress: r.env.Now(),
	}
	r.Metrics.StateFetches++
	r.sendFetchState()
	r.armFetchRetry()
}

// sendFetchState asks every eligible peer for snapshot metadata. The
// request is tiny and the answers compete: the fetcher adopts the highest
// certified sequence it collects (see onSnapshotMeta). HaveSeq advertises
// the newest base this fetcher could apply a delta against: mid-transfer
// that is the snapshot being fetched (a delta against it carries the
// verified chunks forward through a supersession), otherwise the newest
// retained generation.
func (r *Replica) sendFetchState() {
	f := r.fetch
	have := uint64(0)
	if f.seq != 0 {
		have = f.seq
	} else if cs := r.curSnap(); cs != nil {
		have = cs.Seq
	}
	for _, peer := range r.fetchPeers(f) {
		r.env.Send(peer, FetchStateMsg{Replica: r.id, Seq: f.target, HaveSeq: have})
	}
}

// dropStaleFetch cancels an in-progress state transfer that can no longer
// deliver anything: local execution caught up with both the requested
// target and (if metadata was already accepted) the transfer's snapshot
// sequence. Without this, a replica that catches up through gap repair
// keeps an immortal retry timer and may later re-download a snapshot it
// does not need.
func (r *Replica) dropStaleFetch() {
	f := r.fetch
	if f == nil || r.lastExecuted < f.target || r.lastExecuted < f.seq {
		return
	}
	f.stopTimers()
	r.fetch = nil
}

// armFetchRetry re-drives a stalled transfer at the whole-transfer level:
// metadata requests repeat while no meta has been adopted, and every few
// attempts the metadata request repeats even mid-transfer — servers
// garbage-collect superseded snapshots, so a transfer locked to a
// checkpoint the whole cluster has advanced past must discover the newer
// one and restart rather than re-request dead chunks forever. Individual
// lost chunk requests recover much sooner through the per-chunk pacer;
// when that is disabled (ChunkRetryTimeout < 0, the pre-windowed
// baseline) this timer also expires the whole window.
func (r *Replica) armFetchRetry() {
	f := r.fetch
	f.cancel = r.env.After(4*r.cfg.ViewChangeTimeout/3, func() {
		if r.fetch != f {
			return
		}
		r.dropStaleFetch()
		if r.fetch != f {
			return
		}
		f.attempt++
		if f.seq == 0 {
			r.adoptBestMeta() // a meta under collection beats re-polling
		}
		if f.seq == 0 || f.attempt%3 == 0 {
			r.sendFetchState()
		}
		if f.seq != 0 {
			if r.cfg.chunkRetryTimeout() <= 0 {
				r.expireInflight(f, 0)
			}
			r.fillFetchWindow()
		}
		r.armFetchRetry()
	})
}

func (r *Replica) onFetchState(_ int, m FetchStateMsg) {
	cs := r.curSnap()
	if cs == nil || cs.Seq < m.Seq {
		return
	}
	hp, err := cs.ProveHeader()
	if err != nil {
		return
	}
	meta := SnapshotMetaMsg{
		Seq:         cs.Seq,
		Root:        cs.Root(),
		Pi:          cs.Pi,
		Header:      cs.Header,
		HeaderProof: hp,
	}
	// Delta advertisement: when the fetcher already holds a generation
	// this server retains, list the chunks that changed since — the
	// fetcher seeds the rest locally. Advisory only: the fetcher verifies
	// the reassembled root and falls back to refetching on any mismatch.
	if m.HaveSeq > 0 && m.HaveSeq < cs.Seq {
		if delta, ok := r.deltaSince(m.HaveSeq); ok {
			meta.DeltaBase = m.HaveSeq
			meta.DeltaChunks = delta
		}
	}
	r.env.Send(m.Replica, meta)
}

func (r *Replica) onSnapshotMeta(from int, m SnapshotMetaMsg) {
	r.dropStaleFetch()
	f := r.fetch
	if f == nil {
		return
	}
	if from < 1 || from > r.cfg.N() || from == r.id {
		return
	}
	if m.Seq <= r.lastExecuted || m.Seq < f.target || (f.seq != 0 && m.Seq < f.seq) {
		// Metadata BELOW what the transfer needs. The sender is a laggard
		// — an honest server behind the adopted checkpoint (say, freshly
		// restarted) answering chunk requests with the only snapshot it
		// has. It cannot serve this transfer's chunks, so demote it:
		// expire its in-flight requests and let the scheduler shift its
		// window share elsewhere immediately, instead of burning a full
		// retry timeout per request routed to it. Staleness is not
		// tampering — no blame — and a server can only demote itself, so
		// acting before certificate verification is safe.
		r.demoteLaggardServer(f, from, m.Seq)
		return
	}
	// Mid-transfer, only a strictly newer certified snapshot is
	// interesting: it means servers advanced past the one being fetched.
	// Metadata for the sequence already in flight is ignored.
	if f.seq != 0 && m.Seq == f.seq {
		return
	}
	// π over the certified root, then the header's membership proof: after
	// this every chunk is independently verifiable, from any server.
	if r.suite.Pi.Verify(CheckpointSigDigest(m.Seq, m.Root), m.Pi) != nil {
		r.blameSnapshotServer(f, from, "snapshot certificate invalid")
		return
	}
	if err := VerifySnapshotHeader(m.Root, m.Header, m.HeaderProof); err != nil {
		r.blameSnapshotServer(f, from, err.Error())
		return
	}
	// Sanitize the ADVISORY delta fields before they can influence the
	// transfer: indexes must name real chunks of THIS meta's snapshot and
	// the base must be one this fetcher can actually seed from. A lying
	// list that survives this (wrongly claiming chunks clean) is caught
	// by the whole-snapshot root check in finishStateFetch.
	if m.DeltaBase != 0 {
		ok := m.DeltaBase == f.seq || r.retainsSnapshot(m.DeltaBase)
		n := m.Header.NumChunks()
		if len(m.DeltaChunks) > n {
			ok = false
		}
		for _, idx := range m.DeltaChunks {
			if idx < 1 || idx > n {
				ok = false
				break
			}
		}
		if !ok {
			m.DeltaBase, m.DeltaChunks = 0, nil
		}
	}
	if f.seq != 0 {
		// Mid-transfer supersession. A delta against the in-flight base
		// carries every verified chunk forward, so adopting the newer
		// meta costs nothing and skips re-fetching state the transfer
		// already proved — take it immediately. Without that delta,
		// restarting throws away every chunk fetched so far, so an
		// advancing transfer ignores the newer meta and completes
		// (servers retain superseded generations precisely to let it);
		// only a STALLED transfer — its snapshot garbage-collected
		// everywhere, nothing arriving — restarts at the newer state.
		if m.DeltaBase == f.seq {
			r.tracef("state transfer advancing %d → %d via delta (%d changed chunks)", f.seq, m.Seq, len(m.DeltaChunks))
			r.adoptMeta(from, m)
			return
		}
		if !r.fetchStalled(f) {
			return
		}
		r.tracef("state transfer restarting at %d (superseded stalled %d)", m.Seq, f.seq)
		r.adoptMeta(from, m)
		return
	}
	// Initial choice: collect competing metas briefly and adopt the
	// highest certified sequence. Taking the first meta at or above the
	// target instead would let a Byzantine server race a STALE-but-valid
	// certified snapshot and win — pinning recovery to a checkpoint whose
	// chunks the honest servers may already have garbage-collected.
	if f.bestMeta == nil || m.Seq > f.bestMeta.Seq {
		mm := m
		f.bestMeta = &mm
		f.bestFrom = from
	}
	if r.cfg.snapshotMetaWait() < 0 {
		// Legacy first-accepted behavior, kept only as the regression
		// test's demonstration baseline.
		r.adoptBestMeta()
		return
	}
	if f.metaTimer == nil {
		f.metaTimer = r.env.After(r.cfg.snapshotMetaWait(), func() {
			f.metaTimer = nil
			if r.fetch == f {
				r.adoptBestMeta()
			}
		})
	}
}

// expiryLimit is the adaptive per-request retry deadline: the configured
// age stretched to cover the observed service latency (the server's own
// EWMA, falling back to the transfer-wide one before it is seeded),
// bounded so a dead server still expires.
func expiryLimit(f *stateFetch, st *fetchStats, age time.Duration) time.Duration {
	limit := age
	ewma := f.svc
	if st != nil && st.ewmaSet && st.ewma > ewma {
		ewma = st.ewma
	}
	if adaptive := 4 * ewma; adaptive > limit {
		limit = adaptive
	}
	if bound := 8 * age; limit > bound {
		limit = bound
	}
	return limit
}

// fetchStalled reports whether the in-flight transfer has stopped
// advancing: no verified chunk (or accepted meta) within twice the
// (adaptive) retry deadline — a transfer merely waiting out slow-server
// retries is NOT stalled. Used to gate mid-transfer restarts and the
// progress-timeout suppression.
func (r *Replica) fetchStalled(f *stateFetch) bool {
	age := r.cfg.chunkRetryTimeout()
	if age <= 0 {
		age = 4 * r.cfg.ViewChangeTimeout / 3 // no pacer: the whole-transfer retry is the cadence
	}
	return r.env.Now()-f.lastProgress >= 2*expiryLimit(f, nil, age)
}

// demoteLaggardServer reacts to snapshot metadata OLDER than the
// transfer in flight: the sender cannot serve the in-flight chunks (it
// does not have them), so its outstanding requests are expired at once
// and it takes a timeout strike, shifting its window share to servers
// with current material. Repeated stale answers accumulate strikes into
// a soft exclusion, exactly like unresponsiveness — and like
// unresponsiveness it is forgiven if the peer set resets.
func (r *Replica) demoteLaggardServer(f *stateFetch, from int, seq uint64) {
	if f.seq == 0 || seq >= f.seq {
		return
	}
	st := f.stats(from)
	var expired []int
	for idx, req := range f.inflight {
		if req.server == from {
			expired = append(expired, idx)
		}
	}
	sort.Ints(expired)
	for _, idx := range expired {
		delete(f.inflight, idx)
		st.outstanding--
	}
	st.timeouts++
	if st.timeouts >= fetchTimeoutStrikes && !f.blamed[from] {
		r.tracef("snapshot server %d serves only %d < %d; excluding from transfer", from, seq, f.seq)
		f.blamed[from] = true
		r.Metrics.SnapshotTimeoutExclusions++
	}
	if len(expired) > 0 {
		r.fillFetchWindow()
	}
}

// adoptBestMeta commits the transfer to the highest certified meta
// collected so far.
func (r *Replica) adoptBestMeta() {
	f := r.fetch
	if f == nil || f.seq != 0 || f.bestMeta == nil {
		return
	}
	m := *f.bestMeta
	from := f.bestFrom
	f.bestMeta = nil
	r.adoptMeta(from, m)
}

// deltaBaseChunks resolves the chunk source for a delta prefill: a
// complete retained generation at base, or — when the delta is against
// the very snapshot this transfer was fetching (mid-transfer
// supersession) — the superseded window's verified chunks, so fetched
// progress carries over instead of being discarded.
func (r *Replica) deltaBaseChunks(base, prevSeq uint64, prevChunks [][]byte) [][]byte {
	if g := r.genAt(base); g != nil {
		return g.cs.Chunks
	}
	if base != 0 && base == prevSeq {
		return prevChunks
	}
	return nil
}

// adoptMeta (re)starts the transfer at a verified meta. All in-flight
// accounting from a superseded window is wiped so it cannot leak into the
// new one: late chunks for the old sequence are dropped by the seq check
// in onSnapshotChunk, and per-server outstanding counters reset so the
// new window fills completely (a restart that inherited phantom
// outstanding requests would under-fill its window forever). When the
// meta carries a usable delta, the chunks it marks clean are seeded from
// the base this replica already holds — a laggard several checkpoint
// intervals behind then moves base + deltas over the wire instead of
// base × intervals, and a transfer superseded mid-flight keeps its
// verified chunks rather than restarting.
func (r *Replica) adoptMeta(from int, m SnapshotMetaMsg) {
	f := r.fetch
	if f.metaTimer != nil {
		f.metaTimer()
		f.metaTimer = nil
	}
	f.bestMeta = nil
	prevSeq, prevChunks, prevFetched := f.seq, f.chunks, f.fetched
	f.seq = m.Seq
	f.root = append([]byte(nil), m.Root...)
	f.pi = m.Pi
	f.header = m.Header
	f.chunks = make([][]byte, m.Header.NumChunks())
	f.missing = len(f.chunks)
	f.next = 1
	f.inflight = make(map[int]chunkReq)
	f.prefilled = nil
	f.deltaBase = 0
	f.metaFrom = 0
	f.fetched = 0
	for _, st := range f.servers {
		st.outstanding = 0
	}
	f.lastProgress = r.env.Now()
	if m.DeltaBase != 0 {
		if base := r.deltaBaseChunks(m.DeltaBase, prevSeq, prevChunks); base != nil {
			inDelta := make(map[int]bool, len(m.DeltaChunks))
			for _, idx := range m.DeltaChunks {
				inDelta[idx] = true
			}
			for i := 1; i <= len(f.chunks) && i <= len(base); i++ {
				if inDelta[i] || base[i-1] == nil {
					continue
				}
				f.chunks[i-1] = base[i-1]
				f.missing--
				f.prefilled = append(f.prefilled, i)
			}
			if len(f.prefilled) > 0 {
				f.deltaBase = m.DeltaBase
				f.metaFrom = from
				r.Metrics.SnapshotDeltaTransfers++
				r.Metrics.SnapshotChunksReused += uint64(len(f.prefilled))
			}
		}
	}
	if prevSeq != 0 && prevFetched > 0 && !(f.deltaBase == prevSeq && f.deltaBase != 0) {
		// This supersession discarded chunks already verified over the
		// wire — the restart the retention chain and delta path exist to
		// avoid. (Supersessions that carried progress forward, or hit
		// before anything was fetched, do not count.)
		r.Metrics.SnapshotTransferRestarts++
	}
	r.tracef("state transfer to %d: %d chunks to fetch, %d reused (window %d)", f.seq, f.missing, len(f.prefilled), r.cfg.fetchWindow())
	if f.missing == 0 {
		r.finishStateFetch()
		return
	}
	r.fillFetchWindow()
	r.armChunkPacer()
}

// pickFetchServer selects the server for the next chunk request: the
// non-excluded server with the fewest outstanding requests, ties broken
// by the better observed service score, then by id (determinism). Fast
// servers therefore absorb more of the window and slow or unresponsive
// ones naturally lose share (§VIII needs only one honest server; the
// scheduler just prefers the good ones).
func (r *Replica) pickFetchServer(f *stateFetch) int {
	best := -1
	var bestSt *fetchStats
	for _, id := range r.fetchPeers(f) {
		st := f.stats(id)
		if best < 0 || st.outstanding < bestSt.outstanding ||
			(st.outstanding == bestSt.outstanding && st.score() < bestSt.score()) {
			best, bestSt = id, st
		}
	}
	return best
}

// fillFetchWindow tops the bounded in-flight window up with requests for
// missing, not-yet-requested chunks, each routed through the per-server
// scheduler. This is the only place chunk requests are issued.
func (r *Replica) fillFetchWindow() {
	f := r.fetch
	if f == nil || f.seq == 0 || f.missing == 0 {
		return
	}
	win := r.cfg.fetchWindow()
	n := len(f.chunks)
	for scanned := 0; len(f.inflight) < win && scanned < n; scanned++ {
		idx := f.next
		f.next++
		if f.next > n {
			f.next = 1
		}
		if f.chunks[idx-1] != nil {
			continue
		}
		if _, ok := f.inflight[idx]; ok {
			continue
		}
		server := r.pickFetchServer(f)
		if server < 0 {
			return
		}
		f.inflight[idx] = chunkReq{server: server, sentAt: r.env.Now()}
		f.stats(server).outstanding++
		r.env.Send(server, FetchSnapshotChunkMsg{Replica: r.id, Seq: f.seq, Index: idx})
	}
}

// expireInflight removes in-flight requests older than their deadline,
// penalizing the assigned servers: consecutive timeouts shrink a
// server's scheduler share and eventually exclude it from the transfer.
// The deadline adapts to the assigned server's observed service latency
// — a loaded-but-honest server answering in 800ms must not be treated
// like a dead one by a fixed 500ms timer (the spurious retries would
// more than double the transferred bytes) — but stays bounded so an
// actually dead server still expires. age 0 expires everything WITHOUT
// penalties or the per-chunk retry metric: that is the whole-transfer
// re-blast of the no-pacer baseline (ChunkRetryTimeout < 0), which
// reproduces the pre-windowed behavior and must not acquire strike
// bookkeeping that behavior never had. Returns how many requests were
// expired; indexes are processed in sorted order so simulated runs stay
// deterministic.
func (r *Replica) expireInflight(f *stateFetch, age time.Duration) int {
	now := r.env.Now()
	var expired []int
	for idx, req := range f.inflight {
		limit := age
		if age > 0 {
			limit = expiryLimit(f, f.stats(req.server), age)
		}
		if now-req.sentAt >= limit {
			expired = append(expired, idx)
		}
	}
	sort.Ints(expired)
	struck := make(map[int]bool)
	for _, idx := range expired {
		req := f.inflight[idx]
		delete(f.inflight, idx)
		st := f.stats(req.server)
		st.outstanding--
		if age <= 0 {
			continue // whole-transfer re-blast: no per-chunk bookkeeping
		}
		r.Metrics.SnapshotChunkRetries++
		// One strike per server per scan: a single tick expiring several
		// of one server's dropped replies is one observation of
		// unresponsiveness, not three.
		if !struck[req.server] {
			struck[req.server] = true
			st.timeouts++
			if st.timeouts >= fetchTimeoutStrikes && !f.blamed[req.server] {
				r.tracef("snapshot server %d unanswered %d scans; excluding from transfer", req.server, st.timeouts)
				f.blamed[req.server] = true
				r.Metrics.SnapshotTimeoutExclusions++
			}
		}
	}
	return len(expired)
}

// armChunkPacer runs the per-chunk retry scan: an outstanding request
// unanswered for ChunkRetryTimeout is treated as lost and its chunk
// re-enters the window toward a better server. A dropped SnapshotChunkMsg
// now costs one retry interval instead of a whole-transfer restart.
func (r *Replica) armChunkPacer() {
	f := r.fetch
	timeout := r.cfg.chunkRetryTimeout()
	if timeout <= 0 || f.pacer != nil {
		return
	}
	tick := timeout / 2
	if tick <= 0 {
		tick = timeout
	}
	f.pacer = r.env.After(tick, func() {
		f.pacer = nil
		if r.fetch != f || f.seq == 0 {
			return
		}
		r.expireInflight(f, timeout)
		r.fillFetchWindow()
		if f.missing > 0 {
			r.armChunkPacer()
		}
	})
}

func (r *Replica) onFetchSnapshotChunk(_ int, m FetchSnapshotChunkMsg) {
	cur := r.curSnap()
	if cur == nil {
		return
	}
	var cs *CertifiedSnapshot
	if g := r.genAt(m.Seq); g != nil {
		// Any retained generation serves: in-flight transfers keep
		// completing across checkpoint supersessions for the whole
		// retention depth.
		cs = g.cs
	} else if cur.Seq > m.Seq {
		// Superseded beyond retention: the chunks are gone, but
		// re-offering the current metadata lets the fetcher restart
		// at the checkpoint this server can actually serve. (The
		// fetcher-side stall gate keeps an advancing transfer from
		// thrashing on this; only a dead one restarts.)
		r.onFetchState(m.Replica, FetchStateMsg{Replica: m.Replica, Seq: m.Seq})
		return
	} else {
		// The fetcher wants a NEWER snapshot than this server holds —
		// this server is the laggard (say, freshly restarted while the
		// fetcher adopted a later certified checkpoint). Dropping the
		// request silently would leave the fetcher burning a retry
		// timeout per request routed here; answering with current
		// metadata (below the requested sequence) lets the fetcher's
		// scheduler demote this server immediately instead.
		r.onFetchState(m.Replica, FetchStateMsg{Replica: m.Replica})
		return
	}
	if m.Index < 1 || m.Index > len(cs.Chunks) {
		return
	}
	proof, err := cs.ProveChunk(m.Index)
	if err != nil {
		return
	}
	r.env.Send(m.Replica, SnapshotChunkMsg{
		Seq:   m.Seq,
		Index: m.Index,
		Data:  cs.Chunks[m.Index-1],
		Proof: proof,
	})
}

func (r *Replica) onSnapshotChunk(from int, m SnapshotChunkMsg) {
	f := r.fetch
	if f == nil || f.seq == 0 || m.Seq != f.seq {
		return
	}
	if from < 1 || from > r.cfg.N() || from == r.id {
		return
	}
	if m.Index < 1 || m.Index > len(f.chunks) || f.chunks[m.Index-1] != nil {
		return
	}
	req, wasInflight := f.inflight[m.Index]
	if err := VerifySnapshotChunk(f.root, f.header, m.Index, m.Data, m.Proof); err != nil {
		// Tampered or corrupt: blame the sender, exclude it, and route the
		// chunk back through the scheduler. (The pre-windowed code
		// re-derived the retry peer from the PRE-blame rotation — after
		// fetchPeers shrank, `(index+attempt) % len(peers)` could land on
		// the very server just excluded, or on the same server again.)
		r.blameSnapshotServer(f, from, fmt.Sprintf("chunk %d: %v", m.Index, err))
		if wasInflight && req.server == from {
			delete(f.inflight, m.Index)
			f.stats(from).outstanding--
		}
		r.fillFetchWindow()
		return
	}
	if wasInflight {
		delete(f.inflight, m.Index)
		f.stats(req.server).outstanding--
	}
	st := f.stats(from)
	st.timeouts = 0
	if wasInflight && req.server == from {
		d := r.env.Now() - req.sentAt
		st.observe(d)
		if !f.svcSet {
			f.svc, f.svcSet = d, true
		} else {
			f.svc += (d - f.svc) / 4
		}
	}
	f.lastProgress = r.env.Now()
	f.chunks[m.Index-1] = m.Data
	f.missing--
	f.fetched++
	r.Metrics.SnapshotChunks++
	if f.missing == 0 {
		r.finishStateFetch()
		return
	}
	r.fillFetchWindow()
}

// finishStateFetch installs a fully transferred, chunk-verified snapshot:
// restore the application, replace the last-reply table with the CERTIFIED
// one (the exactly-once filter's state is now exactly what the π quorum
// signed), and resume from the restored frontier.
func (r *Replica) finishStateFetch() {
	f := r.fetch
	if r.lastExecuted >= f.seq {
		// Execution advanced past the transfer while chunks were in
		// flight (gap repair): installing now would ROLL BACK application
		// state and the reply table. Drop the transfer; if a raised
		// target still lies ahead, start over against it.
		f.stopTimers()
		r.fetch = nil
		r.maybeFetchState(f.target)
		return
	}
	// Rebuild the commitment over the assembled chunks and require the
	// certified root before installing anything. Chunks fetched over the
	// wire were leaf-verified individually, but chunks seeded from a
	// local base were vouched for only by the meta's ADVISORY delta list
	// — this whole-snapshot check is what makes that list safe to act on.
	cs := &CertifiedSnapshot{Seq: f.seq, Header: f.header, Chunks: f.chunks, Pi: f.pi}
	cs.build()
	if !bytes.Equal(cs.Root(), f.root) {
		if len(f.prefilled) > 0 {
			// A lying delta list claimed changed chunks clean. Blame its
			// sender, drop ONLY the seeded chunks, and fetch them over
			// the wire — every individually verified chunk is kept, so
			// the lie costs the liar its service, not this transfer its
			// progress.
			r.blameSnapshotServer(f, f.metaFrom, "delta prefill mismatched certified root")
			for _, idx := range f.prefilled {
				f.chunks[idx-1] = nil
				f.missing++
			}
			f.prefilled = nil
			f.deltaBase = 0
			f.lastProgress = r.env.Now()
			r.fillFetchWindow()
			r.armChunkPacer()
			return
		}
		// Unreachable with leaf-verified chunks and no prefill.
		r.tracef("state transfer root mismatch at %d", f.seq)
		r.abortStateFetch()
		return
	}
	appBytes, tableBytes, err := AssembleSnapshot(f.header, f.chunks)
	if err != nil {
		// Unreachable with verified chunks; restart the transfer.
		r.tracef("state transfer assembly failed: %v", err)
		r.abortStateFetch()
		return
	}
	table, err := decodeReplyTable(tableBytes)
	if err != nil {
		// The certified table itself is malformed: the honest quorum never
		// signs one, so this replica's decoder and the cluster disagree —
		// do not install half a snapshot.
		r.tracef("state transfer reply table malformed: %v", err)
		r.abortStateFetch()
		return
	}
	if err := r.app.Restore(appBytes); err != nil {
		r.tracef("state transfer restore failed: %v", err)
		r.abortStateFetch()
		return
	}
	if !bytes.Equal(r.app.Digest(), f.header.AppDigest) {
		// Defense in depth: chunks were leaf-verified, so this indicates
		// local divergence, not a tampering server.
		r.tracef("state transfer: restored app digest mismatch")
		r.abortStateFetch()
		return
	}
	// The restore replaced application state wholesale; cached capture
	// identities no longer describe it. The next checkpoint re-hashes
	// every chunk and re-seeds the cache.
	r.capCache = nil
	r.replyCache = table
	for client, e := range table {
		if ts := r.seen[client]; ts < e.timestamp {
			r.seen[client] = e.timestamp
		}
		// Requests the certified table proves executed are no longer
		// pending: drop their watch entries, or the liveness timer keeps
		// firing (and spinning view changes) over work that finished
		// below the snapshot and will never execute locally.
		if w, ok := r.watch[client]; ok && w.ts <= e.timestamp {
			delete(r.watch, client)
		}
	}
	seq, root, pi := f.seq, f.root, f.pi
	f.stopTimers()
	r.fetch = nil
	r.lastExecuted = seq
	// Drop protocol state the snapshot supersedes: slots at or below the
	// restored frontier can never execute locally (their effects are IN
	// the snapshot) and an uncommitted one would read as outstanding work
	// forever, spinning progress-timeout view changes. recordStable has
	// typically already run for this checkpoint — that is what triggered
	// the transfer — and stopped its GC at the OLD execution frontier, so
	// it will not run again below.
	for s := range r.slots {
		if s <= seq {
			delete(r.slots, s)
		}
	}
	for s := range r.directReq {
		if s <= seq {
			delete(r.directReq, s)
		}
	}
	r.adoptSnapshot(cs)
	r.tracef("state transfer complete at %d (%d servers blamed)", seq, len(f.blamed))
	r.recordStable(seq, root, pi)
	r.executeReady()
}

// abortStateFetch cancels the current transfer; the protocol will retrigger
// state transfer from recordStable/maybeFetchState when still behind.
func (r *Replica) abortStateFetch() {
	if r.fetch == nil {
		return
	}
	target := r.fetch.target
	r.fetch.stopTimers()
	r.fetch = nil
	r.maybeFetchState(target)
}
