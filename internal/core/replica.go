package core

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"sbft/internal/crypto/threshsig"
)

// ClientBase is the first node id used for clients; replicas are 1..n.
const ClientBase = 1_000_000

// IsClient reports whether a node id belongs to a client.
func IsClient(id int) bool { return id >= ClientBase }

// slot holds all per-sequence-number protocol state of one replica.
type slot struct {
	seq uint64

	// Highest accepted pre-prepare (fm source for view changes).
	hasPrePrepare  bool
	prePrepareView uint64
	reqs           []Request
	hash           Digest

	// Highest accepted prepare certificate (lm source).
	hasPrepare  bool
	prepareView uint64
	prepareTau  threshsig.Signature
	prepareReqs []Request
	prepareHash Digest

	// Commit certificates.
	commitProof     *FullCommitProofMsg
	commitProofView uint64
	commitSlow      *FullCommitProofSlowMsg
	commitSlowView  uint64

	committed     bool
	committedReqs []Request
	// execReqs is the exactly-once subset of committedReqs actually fed to
	// the application (requests already executed for their client at an
	// earlier sequence are skipped deterministically).
	execReqs []Request
	executed bool

	sentSignShare   bool
	sentCommitShare bool

	// C-collector state (when this replica collects for this slot).
	sigmaShares  map[int]threshsig.Share
	tauShares    map[int]threshsig.Share
	tautauShares map[int]threshsig.Share
	// tauQuorumAt records when the τ quorum was first reached; the gap to
	// the σ quorum feeds the adaptive fast-path timer (§V-E: "an adaptive
	// protocol based on past network profiling to control this timer").
	tauQuorumAt   time.Duration
	tauQuorumSeen bool
	// pendingShares buffers sign-shares that arrived before this
	// collector's own pre-prepare (they cannot be verified yet); replayed
	// by acceptPrePrepare. Without this, WAN reordering starves the fast
	// path of its 3f+c+1 quorum.
	pendingShares []SignShareMsg
	// pendingProofs buffers commit certificates that raced ahead of the
	// pre-prepare.
	pendingFast   *FullCommitProofMsg
	pendingSlow   *FullCommitProofSlowMsg
	collectorView uint64
	sentFastProof bool
	sentPrepare   bool
	sentSlowProof bool
	fastTimer     func() // cancel
	staggerTimer  func() // cancel

	// E-collector state. π shares are grouped by the digest they sign: a
	// Byzantine replica may send correctly-signed shares over a garbage
	// digest, and first-write-wins bookkeeping would let one such share
	// block the honest f+1 quorum. Per-digest groups make the garbage
	// digest inert (it can never gather f+1 signers, at least one of
	// which would have to be honest).
	piShares     map[string]map[int]threshsig.Share
	execDigest   []byte
	execPi       threshsig.Signature
	sentExecCert bool
	execAcked    bool
	execCertSeen bool
}

func (s *slot) resetCollector(view uint64) {
	s.sigmaShares = make(map[int]threshsig.Share)
	s.tauShares = make(map[int]threshsig.Share)
	s.tautauShares = make(map[int]threshsig.Share)
	s.collectorView = view
	s.sentFastProof = false
	s.sentPrepare = false
	s.sentSlowProof = false
	if s.fastTimer != nil {
		s.fastTimer()
		s.fastTimer = nil
	}
	if s.staggerTimer != nil {
		s.staggerTimer()
		s.staggerTimer = nil
	}
}

// watchEntry records the highest pending timestamp of a client and when
// it was first seen.
type watchEntry struct {
	ts    uint64
	since time.Duration
}

// replyCacheEntry remembers where a client's last request executed.
type replyCacheEntry struct {
	timestamp uint64
	seq       uint64
	l         int
	val       []byte
}

// Metrics counts observable protocol events for experiments.
type Metrics struct {
	FastCommits  uint64
	SlowCommits  uint64
	Executions   uint64
	ViewChanges  uint64
	Checkpoints  uint64
	StateFetches uint64
	NullBlocks   uint64
	GapRepairs   uint64
	// DedupSkips counts committed requests skipped at execution because
	// the client's request had already executed at an earlier sequence
	// (exactly-once enforcement across view changes and retries).
	DedupSkips uint64
	// SnapshotChunks counts snapshot chunks fetched and leaf-verified
	// during state transfer.
	SnapshotChunks uint64
	// SnapshotBlames counts snapshot servers blamed for serving metadata
	// or chunks that failed verification against the certified root.
	SnapshotBlames uint64
}

// BlockStore persists committed decision blocks (the paper persists
// transactions to disk via RocksDB; internal/storage provides the
// substitute). Nil disables persistence.
type BlockStore interface {
	Append(seq uint64, payload []byte) error
}

// Replica is one SBFT replica: a deterministic event machine driven by
// Deliver and timer callbacks. It is not safe for concurrent use; the
// runtime (simulator or transport shell) must serialize calls.
type Replica struct {
	id    int
	cfg   Config
	suite CryptoSuite
	keys  ReplicaKeys
	app   Application
	env   Env
	store BlockStore

	view         uint64
	inViewChange bool
	// lastStable is the highest π-proven stable checkpoint (ls in §V-F);
	// windowBase additionally reflects the fast-path rule that advances
	// the window without a checkpoint quorum (ls := max(ls, s − win/4)).
	lastStable   uint64
	windowBase   uint64
	lastExecuted uint64 // le
	stableDigest []byte
	stablePi     threshsig.Signature
	slots        map[uint64]*slot
	// snapshot is the highest stable certified snapshot this replica can
	// serve for state transfer (chunk by chunk, each leaf-provable against
	// the threshold-signed root).
	snapshot *CertifiedSnapshot
	// pendingSnap holds certified snapshots captured at the moment a
	// checkpoint sequence executed, keyed by that sequence. Stabilization
	// (the π quorum) arrives a round-trip later, when execution may have
	// pipelined past the checkpoint; capturing then would mislabel newer
	// state (and a newer reply table) with the older certified digest.
	pendingSnap map[uint64]*CertifiedSnapshot
	// fetch is the in-progress chunked state transfer, if any.
	fetch *stateFetch
	// snapshotBlames accumulates, per server id, how many times that
	// server was blamed for snapshot material failing verification.
	snapshotBlames map[int]int

	// Primary state.
	pending    []Request
	seen       map[int]uint64 // client → highest pending/proposed timestamp
	nextSeq    uint64
	batchTimer func()

	// Client bookkeeping.
	replyCache map[int]replyCacheEntry
	directReq  map[uint64]map[int]bool // seq → set of request indexes wanting direct replies
	// watch tracks client requests this replica knows about but has not
	// yet executed; non-empty watch arms the liveness timer (§VII).
	watch map[int]watchEntry

	// Checkpoint shares collected at checkpoint sequences, grouped by the
	// digest they sign (see the piShares comment: per-digest groups keep
	// a Byzantine replica's signed-garbage digest from blocking the
	// honest quorum).
	ckptShares map[uint64]map[string]map[int]threshsig.Share

	// ppBuffer holds pre-prepares that arrived from a future view's
	// primary before this replica installed that view (the new primary's
	// first proposals race its new-view broadcast on jittery links);
	// replayed on view installation.
	ppBuffer map[uint64][]PrePrepareMsg

	// View change state.
	vcMsgs        map[uint64]map[int]*ViewChangeMsg // target view → sender → msg
	vcSent        map[uint64]bool
	vcBackoff     uint64
	progressTimer func()
	vcTimer       func()
	gapTimer      func()
	gapAttempt    int

	// fastSpread is an EWMA of the observed τ-quorum → σ-quorum share
	// arrival gap, driving the adaptive fast-path timer (§V-E).
	fastSpread     time.Duration
	fastSpreadSeen bool

	Metrics Metrics

	// trace, when set, receives debug lines (tests).
	trace func(format string, args ...any)
}

// NewReplica constructs a replica. app must be at genesis (nothing
// executed); id is 1-based.
func NewReplica(id int, cfg Config, suite CryptoSuite, keys ReplicaKeys, app Application, env Env, store BlockStore) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 1 || id > cfg.N() {
		return nil, fmt.Errorf("core: replica id %d out of range [1,%d]", id, cfg.N())
	}
	r := &Replica{
		id:             id,
		cfg:            cfg,
		suite:          suite,
		keys:           keys,
		app:            app,
		env:            env,
		store:          store,
		slots:          make(map[uint64]*slot),
		seen:           make(map[int]uint64),
		nextSeq:        1,
		replyCache:     make(map[int]replyCacheEntry),
		directReq:      make(map[uint64]map[int]bool),
		watch:          make(map[int]watchEntry),
		ckptShares:     make(map[uint64]map[string]map[int]threshsig.Share),
		vcMsgs:         make(map[uint64]map[int]*ViewChangeMsg),
		vcSent:         make(map[uint64]bool),
		ppBuffer:       make(map[uint64][]PrePrepareMsg),
		pendingSnap:    make(map[uint64]*CertifiedSnapshot),
		snapshotBlames: make(map[int]int),
	}
	return r, nil
}

// ID reports the replica id.
func (r *Replica) ID() int { return r.id }

// View reports the current view.
func (r *Replica) View() uint64 { return r.view }

// LastExecuted reports le.
func (r *Replica) LastExecuted() uint64 { return r.lastExecuted }

// LastStable reports ls.
func (r *Replica) LastStable() uint64 { return r.lastStable }

// InViewChange reports whether the replica is between views.
func (r *Replica) InViewChange() bool { return r.inViewChange }

// SetTrace installs a debug trace sink.
func (r *Replica) SetTrace(fn func(string, ...any)) { r.trace = fn }

func (r *Replica) tracef(format string, args ...any) {
	if r.trace != nil {
		r.trace("[r%d v%d] "+format, append([]any{r.id, r.view}, args...)...)
	}
}

func (r *Replica) isPrimary() bool { return r.cfg.Primary(r.view) == r.id }

func (r *Replica) getSlot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = &slot{seq: seq}
		s.resetCollector(r.view)
		r.slots[seq] = s
	}
	return s
}

// broadcast sends msg to every replica except self.
func (r *Replica) broadcast(msg Message) {
	for i := 1; i <= r.cfg.N(); i++ {
		if i != r.id {
			r.env.Send(i, msg)
		}
	}
}

// Deliver dispatches an incoming message. It is the single entry point of
// the event machine.
func (r *Replica) Deliver(from int, msg any) {
	switch m := msg.(type) {
	case RequestMsg:
		r.onRequest(from, m)
	case PrePrepareMsg:
		r.onPrePrepare(from, m)
	case SignShareMsg:
		r.onSignShare(from, m)
	case FullCommitProofMsg:
		r.onFullCommitProof(from, m)
	case PrepareMsg:
		r.onPrepare(from, m)
	case CommitMsg:
		r.onCommit(from, m)
	case FullCommitProofSlowMsg:
		r.onFullCommitProofSlow(from, m)
	case SignStateMsg:
		r.onSignState(from, m)
	case FullExecuteProofMsg:
		r.onFullExecuteProof(from, m)
	case CheckpointShareMsg:
		r.onCheckpointShare(from, m)
	case CheckpointCertMsg:
		r.onCheckpointCert(from, m)
	case FetchCommitMsg:
		r.onFetchCommit(from, m)
	case CommitInfoMsg:
		r.onCommitInfo(from, m)
	case FetchStateMsg:
		r.onFetchState(from, m)
	case SnapshotMetaMsg:
		r.onSnapshotMeta(from, m)
	case FetchSnapshotChunkMsg:
		r.onFetchSnapshotChunk(from, m)
	case SnapshotChunkMsg:
		r.onSnapshotChunk(from, m)
	case ViewChangeMsg:
		r.onViewChange(from, m)
	case NewViewMsg:
		r.onNewView(from, m)
	}
}

// ---------------------------------------------------------------------------
// Request handling and proposing (primary).

func (r *Replica) onRequest(from int, m RequestMsg) {
	req := m.Req
	// Reply from cache for already-executed requests (retries).
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		if ent.timestamp == req.Timestamp {
			r.env.Send(req.Client, ReplyMsg{
				Seq: ent.seq, L: ent.l, Replica: r.id, View: r.view,
				Client: req.Client, Timestamp: ent.timestamp, Val: ent.val,
			})
		}
		return
	}
	if w, ok := r.watch[req.Client]; !ok || w.ts < req.Timestamp {
		r.watch[req.Client] = watchEntry{ts: req.Timestamp, since: r.env.Now()}
	}
	if !r.isPrimary() {
		// Forward to the primary and watch for progress (§V-A retry path:
		// a request reaching a backup arms the liveness timer, §VII).
		if IsClient(from) {
			r.env.Send(r.cfg.Primary(r.view), m)
		}
		r.notePending(req) // retained so a future primary can propose it
		r.armProgressTimer()
		return
	}
	r.notePending(req)
	r.armProgressTimer()
	r.proposeIfReady(false)
}

// notePending enqueues a request if it is new.
func (r *Replica) notePending(req Request) {
	if ts, ok := r.seen[req.Client]; ok && ts >= req.Timestamp {
		return
	}
	r.seen[req.Client] = req.Timestamp
	r.pending = append(r.pending, req)
	r.armBatchTimer()
}

// requeue re-adds a request to the pending queue unless it has already
// executed or is already queued, bypassing the `seen` dedup (which tracks
// proposed-but-possibly-lost requests). Used at view installation so
// requests stuck in slots the new view did not adopt are proposed again;
// the exactly-once execution filter makes a redundant re-proposal
// harmless.
func (r *Replica) requeue(req Request) {
	if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
		return
	}
	for _, p := range r.pending {
		if p.Client == req.Client && p.Timestamp >= req.Timestamp {
			return
		}
	}
	r.pending = append(r.pending, req)
	if ts := r.seen[req.Client]; ts < req.Timestamp {
		r.seen[req.Client] = req.Timestamp
	}
}

// armBatchTimer ensures a pending-but-unproposed request cannot starve:
// whenever the primary holds pending requests, a batch timer is running.
func (r *Replica) armBatchTimer() {
	if !r.isPrimary() || len(r.pending) == 0 || r.batchTimer != nil || r.cfg.BatchTimeout <= 0 {
		return
	}
	r.batchTimer = r.env.After(r.cfg.BatchTimeout, func() {
		r.batchTimer = nil
		r.proposeIfReady(true)
	})
}

// activeWindow is the number of blocks committed in parallel by the
// primary: ⌊(n−1)/(c+1)⌋, capped by win/2 (§VIII).
func (r *Replica) activeWindow() uint64 {
	aw := uint64((r.cfg.N() - 1) / (r.cfg.C + 1))
	if aw < 1 {
		aw = 1
	}
	if aw > r.cfg.Win/2 {
		aw = r.cfg.Win / 2
	}
	return aw
}

// adaptiveBatch implements the paper's heuristic: pending divided by half
// the allowed concurrency, clamped to [1, Batch] (§V-C, §VIII).
func (r *Replica) adaptiveBatch() int {
	half := int(r.activeWindow() / 2)
	if half < 1 {
		half = 1
	}
	b := len(r.pending) / half
	if b < 1 {
		b = 1
	}
	if b > r.cfg.Batch {
		b = r.cfg.Batch
	}
	return b
}

// outstanding counts proposed-but-uncommitted sequence numbers.
func (r *Replica) outstanding() uint64 {
	var n uint64
	for seq := r.windowBase + 1; seq < r.nextSeq; seq++ {
		if s, ok := r.slots[seq]; !ok || !s.committed {
			n++
		}
	}
	return n
}

func (r *Replica) proposeIfReady(timerFired bool) {
	if !r.isPrimary() || r.inViewChange {
		return
	}
	// Whatever stops the proposal loop, leftover pending requests must
	// have a running batch timer to pick them up.
	defer r.armBatchTimer()
	for {
		if len(r.pending) == 0 {
			return
		}
		if !timerFired && len(r.pending) < r.adaptiveBatch() {
			return
		}
		if r.outstanding() >= r.activeWindow() {
			return
		}
		if r.nextSeq > r.windowBase+r.cfg.Win {
			return
		}
		batch := r.cfg.Batch
		if len(r.pending) < batch {
			batch = len(r.pending)
		}
		reqs := make([]Request, batch)
		copy(reqs, r.pending[:batch])
		r.pending = r.pending[batch:]
		seq := r.nextSeq
		r.nextSeq++
		pp := PrePrepareMsg{Seq: seq, View: r.view, Reqs: reqs}
		r.tracef("propose seq=%d batch=%d", seq, len(reqs))
		r.broadcast(pp)
		r.acceptPrePrepare(r.id, pp)
		timerFired = false // only force one under-sized batch per timer
	}
}

// ---------------------------------------------------------------------------
// Fast path: pre-prepare → sign-share → full-commit-proof.

func (r *Replica) onPrePrepare(from int, m PrePrepareMsg) {
	if m.View != r.view || r.inViewChange {
		// A future view's primary may propose before our new-view message
		// arrives (its first pre-prepares race the install on jittery
		// links): buffer and replay at installation instead of dropping.
		// Bounded to one primary rotation of future views and one entry
		// per sequence, so neither a Byzantine future-primary nor a
		// duplicating link can exhaust the buffer.
		if m.View >= r.view && m.View <= r.view+uint64(r.cfg.N()) &&
			from == r.cfg.Primary(m.View) {
			r.bufferPP(m)
		}
		return
	}
	if from != r.cfg.Primary(r.view) {
		return
	}
	if m.Seq <= r.windowBase || m.Seq > r.windowBase+r.cfg.Win {
		if m.Seq > r.windowBase+r.cfg.Win && m.Seq > r.lastExecuted+r.cfg.Win {
			// Too far behind to catch up through the pipeline (§VIII
			// state transfer trigger).
			r.maybeFetchState(r.lastExecuted + 1)
		}
		return
	}
	s := r.getSlot(m.Seq)
	if s.hasPrePrepare && s.prePrepareView == m.View {
		if s.hash != BlockHash(m.Seq, m.View, m.Reqs) {
			// Publicly verifiable equivocation by the primary (§V-G
			// trigger): start a view change immediately.
			r.tracef("equivocation detected at seq=%d", m.Seq)
			r.startViewChange(r.view + 1)
		}
		return
	}
	r.acceptPrePrepare(from, m)
}

// bufferPP stores a racing pre-prepare for replay at view installation,
// capped at Win entries per view with one entry per sequence (duplicated
// deliveries must not evict distinct sequences).
func (r *Replica) bufferPP(m PrePrepareMsg) {
	buf := r.ppBuffer[m.View]
	for _, b := range buf {
		if b.Seq == m.Seq {
			return
		}
	}
	if uint64(len(buf)) < r.cfg.Win {
		r.ppBuffer[m.View] = append(buf, m)
	}
}

func (r *Replica) acceptPrePrepare(_ int, m PrePrepareMsg) {
	s := r.getSlot(m.Seq)
	s.hasPrePrepare = true
	s.prePrepareView = m.View
	s.reqs = m.Reqs
	s.hash = BlockHash(m.Seq, m.View, m.Reqs)
	for i, req := range m.Reqs {
		if req.Direct {
			if r.directReq[m.Seq] == nil {
				r.directReq[m.Seq] = make(map[int]bool)
			}
			r.directReq[m.Seq][i] = true
		}
		if ts := r.seen[req.Client]; ts < req.Timestamp {
			r.seen[req.Client] = req.Timestamp
		}
	}
	if s.committed {
		return
	}
	r.armProgressTimer()
	r.sendSignShare(s)
	// Replay anything that raced ahead of this pre-prepare.
	if len(s.pendingShares) > 0 {
		buffered := s.pendingShares
		s.pendingShares = nil
		for _, sh := range buffered {
			r.onSignShare(sh.Replica, sh)
		}
	}
	if s.pendingFast != nil {
		pf := *s.pendingFast
		s.pendingFast = nil
		r.onFullCommitProof(r.id, pf)
	}
	if s.pendingSlow != nil {
		ps := *s.pendingSlow
		s.pendingSlow = nil
		r.onFullCommitProofSlow(r.id, ps)
	}
}

func (r *Replica) sendSignShare(s *slot) {
	if s.sentSignShare {
		return
	}
	s.sentSignShare = true
	tauShare, err := r.keys.Tau.Sign(s.hash[:])
	if err != nil {
		r.tracef("tau sign failed: %v", err)
		return
	}
	msg := SignShareMsg{Seq: s.seq, View: s.prePrepareView, Replica: r.id, TauSig: tauShare}
	// §V-F fast-path gate: only join the fast path near the execution
	// frontier so fast commits can advance ls without a checkpoint quorum.
	if r.cfg.FastPath && s.seq <= r.lastExecuted+r.cfg.fastGateWindow() {
		sigmaShare, err := r.keys.Sigma.Sign(s.hash[:])
		if err != nil {
			r.tracef("sigma sign failed: %v", err)
			return
		}
		msg.SigmaSig = sigmaShare
	}
	r.tracef("sign-share seq=%d sigma=%v", s.seq, len(msg.SigmaSig.Data) > 0)
	targets := r.cfg.CCollectors(s.seq, s.prePrepareView)
	sent := map[int]bool{}
	for _, c := range targets {
		if sent[c] {
			continue
		}
		sent[c] = true
		if c == r.id {
			r.onSignShare(r.id, msg)
		} else {
			r.env.Send(c, msg)
		}
	}
}

// collectorIndex reports this replica's position in the C-collector list
// for (seq, view), or -1.
func (r *Replica) collectorIndex(seq, view uint64) int {
	for i, c := range r.cfg.CCollectors(seq, view) {
		if c == r.id {
			return i
		}
	}
	return -1
}

func (r *Replica) onSignShare(from int, m SignShareMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	idx := r.collectorIndex(m.Seq, m.View)
	if idx < 0 {
		return
	}
	s := r.getSlot(m.Seq)
	if s.collectorView != m.View {
		s.resetCollector(m.View)
	}
	if s.sentFastProof && s.sentSlowProof {
		return
	}
	if _, dup := s.tauShares[m.Replica]; dup {
		return
	}
	// Shares arriving before our pre-prepare cannot be verified yet:
	// buffer and replay (bounded by one share per replica).
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if len(s.pendingShares) < r.cfg.N() {
			s.pendingShares = append(s.pendingShares, m)
		}
		return
	}
	// Robustness: verify shares before counting them (§III).
	if r.suite.Tau.VerifyShare(s.hash[:], m.TauSig) != nil {
		return
	}
	s.tauShares[m.Replica] = m.TauSig
	if len(m.SigmaSig.Data) > 0 {
		if r.suite.Sigma.VerifyShare(s.hash[:], m.SigmaSig) == nil {
			s.sigmaShares[m.Replica] = m.SigmaSig
		}
	}
	r.collectorTryProgress(s, m.View, idx)
}

// observeFastSpread feeds the adaptive fast-path timer: collectors learn
// how long the σ quorum trails the τ quorum on their slots and extend the
// fallback timer to cover it (§V-E network profiling).
func (r *Replica) observeFastSpread(spread time.Duration) {
	if !r.fastSpreadSeen {
		r.fastSpread = spread
		r.fastSpreadSeen = true
		return
	}
	// EWMA with α = 1/4.
	r.fastSpread += (spread - r.fastSpread) / 4
}

// fastTimerDuration is the adaptive wait before abandoning the fast path:
// at least the configured floor, stretched to cover the recently observed
// share-arrival spread, and capped so crashed replicas cannot inflate
// latency unboundedly.
func (r *Replica) fastTimerDuration() time.Duration {
	d := r.cfg.FastPathTimeout
	if r.fastSpreadSeen {
		if adaptive := r.fastSpread * 2; adaptive > d {
			d = adaptive
		}
	}
	if limit := 6 * r.cfg.FastPathTimeout; d > limit {
		d = limit
	}
	return d
}

func (r *Replica) collectorTryProgress(s *slot, view uint64, idx int) {
	r.tracef("collector seq=%d idx=%d sigma=%d tau=%d fastSent=%v prepSent=%v",
		s.seq, idx, len(s.sigmaShares), len(s.tauShares), s.sentFastProof, s.sentPrepare)
	if !s.tauQuorumSeen && len(s.tauShares) >= r.cfg.QuorumSlow() {
		s.tauQuorumSeen = true
		s.tauQuorumAt = r.env.Now()
	}
	if s.tauQuorumSeen && len(s.sigmaShares) >= r.cfg.QuorumFast() {
		r.observeFastSpread(r.env.Now() - s.tauQuorumAt)
	}
	// Fast path: combine σ(h) once 3f+c+1 shares arrive.
	if r.cfg.FastPath && !s.sentFastProof && len(s.sigmaShares) >= r.cfg.QuorumFast() {
		shares := sharesList(s.sigmaShares)
		// Shares in sigmaShares were pairing-checked on arrival in
		// onSignShare, so combination skips re-verification (§III).
		sig, err := r.suite.Sigma.CombineVerified(s.hash[:], shares)
		if err == nil {
			s.sentFastProof = true
			if s.fastTimer != nil {
				s.fastTimer()
				s.fastTimer = nil
			}
			r.sendStaggered(s, idx, func() {
				msg := FullCommitProofMsg{Seq: s.seq, View: view, Sigma: sig}
				r.broadcast(msg)
				r.onFullCommitProof(r.id, msg)
			})
			return
		}
	}
	// Slow-path trigger: τ quorum but no σ quorum → wait for the fast
	// timer (skipped when the fast path is disabled), then send prepare,
	// staggered so redundant collectors only act if earlier ones stall
	// (§V-E; the primary activates last).
	if !s.sentPrepare && len(s.tauShares) >= r.cfg.QuorumSlow() {
		fire := func() {
			// A prepare already seen from another collector makes ours
			// redundant — but only a CURRENT-view prepare counts: stale
			// prepare evidence from an earlier view must not stop the slot
			// from re-preparing after a view change, or it deadlocks (the
			// chaos harness found exactly this under lossy links).
			if s.sentPrepare || s.sentFastProof || s.committed {
				return
			}
			if s.hasPrepare && s.prepareView >= view {
				return
			}
			shares := sharesList(s.tauShares)
			sig, err := r.suite.Tau.CombineVerified(s.hash[:], shares)
			if err != nil {
				return
			}
			s.sentPrepare = true
			msg := PrepareMsg{Seq: s.seq, View: view, Tau: sig}
			r.broadcast(msg)
			r.onPrepare(r.id, msg)
		}
		delay := time.Duration(idx) * r.cfg.CollectorStagger
		if r.cfg.FastPath {
			delay += r.fastTimerDuration()
		}
		if s.fastTimer == nil && !s.sentFastProof {
			if delay == 0 {
				fire()
				return
			}
			s.fastTimer = r.env.After(delay, func() {
				s.fastTimer = nil
				fire()
			})
		}
	}
}

// sendStaggered runs send immediately for the first collector and after
// idx*CollectorStagger for redundant collectors, cancelling if the slot
// commits meanwhile (§V: staggered collectors monitor in idle).
func (r *Replica) sendStaggered(s *slot, idx int, send func()) {
	if idx <= 0 || r.cfg.CollectorStagger <= 0 {
		send()
		return
	}
	delay := time.Duration(idx) * r.cfg.CollectorStagger
	s.staggerTimer = r.env.After(delay, func() {
		s.staggerTimer = nil
		if !s.committed {
			send()
		}
	})
}

func sharesList(m map[int]threshsig.Share) []threshsig.Share {
	out := make([]threshsig.Share, 0, len(m))
	for _, sh := range m {
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signer < out[j].Signer })
	return out
}

func (r *Replica) onFullCommitProof(_ int, m FullCommitProofMsg) {
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if m.Seq > r.windowBase && m.Seq <= r.windowBase+r.cfg.Win {
			s.pendingFast = &m
		}
		return
	}
	if r.suite.Sigma.Verify(s.hash[:], m.Sigma) != nil {
		return
	}
	s.commitProof = &m
	s.commitProofView = m.View
	r.Metrics.FastCommits++
	// §V-F: a fast commit advances the window without a checkpoint quorum.
	if m.Seq > r.cfg.fastGateWindow() {
		if nls := m.Seq - r.cfg.fastGateWindow(); nls > r.windowBase {
			r.windowBase = nls
		}
	}
	r.commit(s, s.reqs)
}

// ---------------------------------------------------------------------------
// Linear-PBFT slow path: prepare → commit → full-commit-proof-slow.

func (r *Replica) onPrepare(_ int, m PrepareMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	s := r.getSlot(m.Seq)
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		return
	}
	if s.hasPrepare && s.prepareView >= m.View {
		// Already have an equal-or-higher prepare; still allowed to send
		// the commit share once.
	} else {
		if r.suite.Tau.Verify(s.hash[:], m.Tau) != nil {
			return
		}
		s.hasPrepare = true
		s.prepareView = m.View
		s.prepareTau = m.Tau
		s.prepareReqs = s.reqs
		s.prepareHash = s.hash
	}
	if s.committed || s.sentCommitShare {
		return
	}
	s.sentCommitShare = true
	share, err := r.keys.Tau.Sign(tauTauDigest(s.prepareTau))
	if err != nil {
		return
	}
	msg := CommitMsg{Seq: m.Seq, View: m.View, Replica: r.id, TauTau: share}
	sent := map[int]bool{}
	for _, c := range r.cfg.CCollectors(m.Seq, m.View) {
		if sent[c] {
			continue
		}
		sent[c] = true
		if c == r.id {
			r.onCommit(r.id, msg)
		} else {
			r.env.Send(c, msg)
		}
	}
}

func (r *Replica) onCommit(_ int, m CommitMsg) {
	if m.View != r.view || r.inViewChange {
		return
	}
	idx := r.collectorIndex(m.Seq, m.View)
	if idx < 0 {
		return
	}
	s := r.getSlot(m.Seq)
	if s.collectorView != m.View || s.sentSlowProof || !s.hasPrepare {
		if !s.hasPrepare {
			return
		}
		if s.collectorView != m.View {
			return
		}
		if s.sentSlowProof {
			return
		}
	}
	if _, dup := s.tautauShares[m.Replica]; dup {
		return
	}
	if r.suite.Tau.VerifyShare(tauTauDigest(s.prepareTau), m.TauTau) != nil {
		return
	}
	s.tautauShares[m.Replica] = m.TauTau
	if len(s.tautauShares) >= r.cfg.QuorumSlow() && !s.sentSlowProof {
		s.sentSlowProof = true
		fire := func() {
			if s.committed || s.commitSlow != nil {
				return // another collector's proof already landed
			}
			sig, err := r.suite.Tau.CombineVerified(tauTauDigest(s.prepareTau), sharesList(s.tautauShares))
			if err != nil {
				return
			}
			msg := FullCommitProofSlowMsg{Seq: m.Seq, View: m.View, Tau: s.prepareTau, TauTau: sig}
			r.broadcast(msg)
			r.onFullCommitProofSlow(r.id, msg)
		}
		idx := r.collectorIndex(m.Seq, m.View)
		if idx <= 0 || r.cfg.CollectorStagger <= 0 {
			fire()
			return
		}
		r.env.After(time.Duration(idx)*r.cfg.CollectorStagger, fire)
	}
}

func (r *Replica) onFullCommitProofSlow(_ int, m FullCommitProofSlowMsg) {
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	if !s.hasPrePrepare || s.prePrepareView != m.View {
		if m.Seq > r.windowBase && m.Seq <= r.windowBase+r.cfg.Win {
			s.pendingSlow = &m
		}
		return
	}
	// Verify the chain: τ(h) over our block hash, then τ(τ(h)).
	if r.suite.Tau.Verify(s.hash[:], m.Tau) != nil {
		return
	}
	if r.suite.Tau.Verify(tauTauDigest(m.Tau), m.TauTau) != nil {
		return
	}
	s.commitSlow = &m
	s.commitSlowView = m.View
	if !s.hasPrepare || s.prepareView < m.View {
		s.hasPrepare = true
		s.prepareView = m.View
		s.prepareTau = m.Tau
		s.prepareReqs = s.reqs
		s.prepareHash = s.hash
	}
	r.Metrics.SlowCommits++
	r.commit(s, s.reqs)
}

// ---------------------------------------------------------------------------
// Commit, execution and acknowledgement.

func (r *Replica) commit(s *slot, reqs []Request) {
	if s.committed {
		return
	}
	s.committed = true
	s.committedReqs = reqs
	if s.fastTimer != nil {
		s.fastTimer()
		s.fastTimer = nil
	}
	if s.staggerTimer != nil {
		s.staggerTimer()
		s.staggerTimer = nil
	}
	r.tracef("commit seq=%d (%d reqs)", s.seq, len(reqs))
	r.executeReady()
	r.armProgressTimer()
	r.checkGap()
}

// checkGap detects an execution gap — a committed block above an
// uncommitted one — and arms the repair timer (§II re-transmit layer).
func (r *Replica) checkGap() {
	if r.gapTimer != nil || r.cfg.GapRepairTimeout <= 0 {
		return
	}
	if !r.hasGap() {
		return
	}
	r.gapTimer = r.env.After(r.cfg.GapRepairTimeout, func() {
		r.gapTimer = nil
		if !r.hasGap() {
			r.gapAttempt = 0
			return
		}
		missing := r.lastExecuted + 1
		// Rotate through peers across attempts.
		peer := (int(missing)+r.gapAttempt)%r.cfg.N() + 1
		if peer == r.id {
			peer = peer%r.cfg.N() + 1
		}
		r.gapAttempt++
		r.tracef("gap repair: fetching decision %d from %d", missing, peer)
		r.env.Send(peer, FetchCommitMsg{Replica: r.id, Seq: missing})
		r.checkGap()
	})
}

// hasGap reports whether execution is stalled behind a committed block.
func (r *Replica) hasGap() bool {
	next := r.lastExecuted + 1
	if s, ok := r.slots[next]; ok && s.committed {
		return false // executeReady will handle it
	}
	for seq, s := range r.slots {
		if seq > next && s.committed {
			return true
		}
	}
	return r.lastStable > r.lastExecuted
}

func (r *Replica) onFetchCommit(_ int, m FetchCommitMsg) {
	s, ok := r.slots[m.Seq]
	if !ok || !s.committed {
		// Possibly garbage-collected: offer the snapshot instead.
		if r.snapshot != nil && r.snapshot.Seq >= m.Seq {
			r.onFetchState(m.Replica, FetchStateMsg{Replica: m.Replica, Seq: m.Seq})
		}
		return
	}
	info := CommitInfoMsg{Seq: m.Seq, Reqs: s.committedReqs}
	switch {
	case s.commitProof != nil:
		info.HasFast = true
		info.View = s.commitProofView
		info.Sigma = s.commitProof.Sigma
	case s.commitSlow != nil:
		info.View = s.commitSlowView
		info.Tau = s.commitSlow.Tau
		info.TauTau = s.commitSlow.TauTau
	default:
		// Committed through a new-view decision without a retained
		// certificate; the requester will try another peer.
		return
	}
	r.env.Send(m.Replica, info)
}

func (r *Replica) onCommitInfo(_ int, m CommitInfoMsg) {
	if m.Seq <= r.lastExecuted {
		return
	}
	s := r.getSlot(m.Seq)
	if s.committed {
		return
	}
	h := BlockHash(m.Seq, m.View, m.Reqs)
	if m.HasFast {
		if r.suite.Sigma.Verify(h[:], m.Sigma) != nil {
			return
		}
		s.commitProof = &FullCommitProofMsg{Seq: m.Seq, View: m.View, Sigma: m.Sigma}
		s.commitProofView = m.View
	} else {
		if r.suite.Tau.Verify(h[:], m.Tau) != nil {
			return
		}
		if r.suite.Tau.Verify(tauTauDigest(m.Tau), m.TauTau) != nil {
			return
		}
		s.commitSlow = &FullCommitProofSlowMsg{Seq: m.Seq, View: m.View, Tau: m.Tau, TauTau: m.TauTau}
		s.commitSlowView = m.View
	}
	if !s.hasPrePrepare {
		s.hasPrePrepare = true
		s.prePrepareView = m.View
	}
	s.reqs = m.Reqs
	s.hash = h
	r.Metrics.GapRepairs++
	r.commit(s, m.Reqs)
}

// executeReady executes committed blocks in sequence order (§V-D execute
// trigger).
func (r *Replica) executeReady() {
	advanced := false
	defer func() {
		if advanced {
			r.resetProgressTimer()
			r.checkGap()
			r.dropStaleFetch()
		}
	}()
	for {
		next := r.lastExecuted + 1
		s, ok := r.slots[next]
		if !ok || !s.committed || s.executed {
			return
		}
		advanced = true
		// Exactly-once execution: the same request can legitimately commit
		// at two sequence numbers (a retried request re-proposed across a
		// view change, or a Byzantine primary double-proposing); replicas
		// skip the second occurrence deterministically, keyed on the reply
		// cache — the classic PBFT last-reply-timestamp rule.
		s.execReqs = s.committedReqs[:0:0]
		for _, req := range s.committedReqs {
			if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
				r.Metrics.DedupSkips++
				continue
			}
			dup := false
			for _, e := range s.execReqs {
				if e.Client == req.Client && e.Timestamp >= req.Timestamp {
					dup = true
					break
				}
			}
			if dup {
				r.Metrics.DedupSkips++
				continue
			}
			s.execReqs = append(s.execReqs, req)
		}
		ops := make([][]byte, len(s.execReqs))
		for i, req := range s.execReqs {
			ops[i] = req.Op
		}
		results := r.app.ExecuteBlock(next, ops)
		s.executed = true
		r.lastExecuted = next
		r.Metrics.Executions++
		if len(s.committedReqs) == 0 {
			r.Metrics.NullBlocks++
		}
		if r.store != nil {
			if err := r.store.Append(next, EncodeBlockPayload(s.execReqs, results)); err != nil {
				r.tracef("block store append failed: %v", err)
			}
		}
		digest := r.app.Digest()

		// Cache replies and serve direct-path replies.
		for i, req := range s.execReqs {
			r.replyCache[req.Client] = replyCacheEntry{
				timestamp: req.Timestamp, seq: next, l: i, val: results[i],
			}
			if w, ok := r.watch[req.Client]; ok && w.ts <= req.Timestamp {
				delete(r.watch, req.Client)
			}
			if !r.cfg.ExecCollectors || req.Direct {
				r.env.Send(req.Client, ReplyMsg{
					Seq: next, L: i, Replica: r.id, View: r.view,
					Client: req.Client, Timestamp: req.Timestamp, Val: results[i],
				})
			}
		}
		// Drop executed requests retained for future primaries.
		if len(r.pending) > 0 {
			kept := r.pending[:0]
			for _, req := range r.pending {
				if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
					continue
				}
				kept = append(kept, req)
			}
			r.pending = kept
		}

		// Sign-state phase (§V-D) — only useful when exec collectors are
		// enabled.
		if r.cfg.ExecCollectors {
			share, err := r.keys.Pi.Sign(stateSigDigest(next, digest))
			if err == nil {
				msg := SignStateMsg{Seq: next, Replica: r.id, Digest: digest, PiSig: share}
				for _, c := range r.cfg.ECollectors(next, 0) {
					if c == r.id {
						r.onSignState(r.id, msg)
					} else {
						r.env.Send(c, msg)
					}
				}
			}
			// If this replica is an E-collector that combined the π
			// certificate before executing locally, release the acks now.
			r.sendExecuteAcks(next)
			// Fallback: if every E-collector of this sequence is crashed,
			// serve clients directly after a timeout so the single
			// correct-collector liveness assumption degrades gracefully.
			if r.cfg.ExecFallbackTimeout > 0 && len(s.execReqs) > 0 {
				seq := next
				r.env.After(r.cfg.ExecFallbackTimeout, func() {
					r.execFallback(seq)
				})
			}
		}

		// Periodic checkpoint (§V-F). Capture the certified snapshot NOW,
		// while application state and reply table are exactly at this
		// sequence; the π shares sign its Merkle root, which commits to
		// both, so a single honest snapshot server suffices for verified
		// state transfer. The stable certificate adopts the capture when
		// it arrives.
		if next%r.cfg.checkpointEvery() == 0 {
			cs, err := r.buildSnapshot(next, digest)
			if err != nil {
				// The certified root cannot be computed without the
				// snapshot bytes, so this replica abstains from this
				// checkpoint (the π quorum needs only f+1 of n; a
				// deterministic app's Snapshot failing on a quorum of
				// replicas is an application bug, not a protocol state).
				r.tracef("checkpoint snapshot at %d failed: %v", next, err)
			} else {
				r.pendingSnap[next] = cs
				r.initiateCheckpoint(next, cs.Root())
			}
		}
	}
}

func (r *Replica) isECollector(seq uint64) bool {
	for _, c := range r.cfg.ECollectors(seq, 0) {
		if c == r.id {
			return true
		}
	}
	return false
}

func (r *Replica) onSignState(_ int, m SignStateMsg) {
	if !r.isECollector(m.Seq) {
		return
	}
	s := r.getSlot(m.Seq)
	if s.sentExecCert {
		return
	}
	// Group shares by signed digest: only a digest f+1 distinct replicas
	// vouch for (at least one honest) can be certified, so a Byzantine
	// replica's signed-garbage digest can never block or hijack the cert.
	// One share slot per replica per sequence ACROSS groups — checked
	// before the expensive share verification — bounds the table at n
	// entries and keeps duplicate deliveries cheap; a Byzantine
	// double-voter merely wastes its slot on its first digest.
	if s.piShares == nil {
		s.piShares = make(map[string]map[int]threshsig.Share)
	}
	for _, g := range s.piShares {
		if _, dup := g[m.Replica]; dup {
			return
		}
	}
	if r.suite.Pi.VerifyShare(stateSigDigest(m.Seq, m.Digest), m.PiSig) != nil {
		return
	}
	group := s.piShares[string(m.Digest)]
	if group == nil {
		group = make(map[int]threshsig.Share)
		s.piShares[string(m.Digest)] = group
	}
	group[m.Replica] = m.PiSig
	if len(group) < r.cfg.QuorumExec() {
		return
	}
	s.sentExecCert = true
	s.execDigest = m.Digest
	quorum := sharesList(group)
	fire := func() {
		if s.execCertSeen {
			return // another E-collector already certified this sequence
		}
		pi, err := r.suite.Pi.CombineVerified(stateSigDigest(m.Seq, s.execDigest), quorum)
		if err != nil {
			return
		}
		s.execPi = pi
		r.broadcast(FullExecuteProofMsg{Seq: m.Seq, Digest: s.execDigest, Pi: pi})
		r.sendExecuteAcks(m.Seq)
	}
	// Stagger redundant E-collectors like C-collectors (§V).
	idx := -1
	for i, c := range r.cfg.ECollectors(m.Seq, 0) {
		if c == r.id {
			idx = i
			break
		}
	}
	if idx <= 0 || r.cfg.CollectorStagger <= 0 {
		fire()
		return
	}
	r.env.After(time.Duration(idx)*r.cfg.CollectorStagger, fire)
}

// sendExecuteAcks sends each client of block seq its single execute-ack
// with a Merkle proof (§V-D). It requires both the combined π certificate
// and local execution of seq; whichever happens last triggers the acks
// (executeReady re-invokes it after executing).
func (r *Replica) sendExecuteAcks(seq uint64) {
	s, ok := r.slots[seq]
	if !ok || s.execAcked || len(s.execPi.Data) == 0 || r.lastExecuted < seq {
		return
	}
	s.execAcked = true
	digest, pi := s.execDigest, s.execPi
	for i, req := range s.execReqs {
		if req.Direct {
			continue // direct requests already got PBFT-style replies
		}
		proof, err := r.app.ProveOperation(seq, i)
		if err != nil {
			r.tracef("prove op %d/%d: %v", seq, i, err)
			continue
		}
		ent, ok := r.replyCache[req.Client]
		if !ok || ent.seq != seq {
			continue
		}
		r.env.Send(req.Client, ExecuteAckMsg{
			Seq: seq, L: i, Val: ent.val,
			Client: req.Client, Timestamp: req.Timestamp, View: r.view,
			Digest: digest, Pi: pi, Proof: proof,
		})
	}
}

// execFallback sends direct replies to the clients of block seq when no
// full-execute-proof arrived in time (crashed E-collectors).
func (r *Replica) execFallback(seq uint64) {
	s, ok := r.slots[seq]
	if !ok || !s.executed || s.execCertSeen {
		return
	}
	for i, req := range s.execReqs {
		ent, ok := r.replyCache[req.Client]
		if !ok || ent.seq != seq || ent.timestamp != req.Timestamp {
			continue
		}
		r.env.Send(req.Client, ReplyMsg{
			Seq: seq, L: i, Replica: r.id, View: r.view,
			Client: req.Client, Timestamp: req.Timestamp, Val: ent.val,
		})
	}
}

func (r *Replica) onFullExecuteProof(_ int, m FullExecuteProofMsg) {
	if r.suite.Pi.Verify(stateSigDigest(m.Seq, m.Digest), m.Pi) != nil {
		return
	}
	if s, ok := r.slots[m.Seq]; ok {
		s.execCertSeen = true
	}
	// Execution certificates cover only the application digest; checkpoint
	// stability now requires the certified execution-state root (which
	// also commits the last-reply table), carried by checkpoint shares —
	// the two certificate families are domain-separated and cannot stand
	// in for each other.
}

// ---------------------------------------------------------------------------
// Checkpoints, garbage collection, state transfer.

// initiateCheckpoint broadcasts this replica's π share over the certified
// execution-state root at a checkpoint sequence. Shares go to all replicas
// so everyone can assemble the stable certificate locally even when
// collectors are crashed; at one checkpoint per win/2 blocks the quadratic
// cost is amortized away (§V-F).
func (r *Replica) initiateCheckpoint(seq uint64, root []byte) {
	share, err := r.keys.Pi.Sign(CheckpointSigDigest(seq, root))
	if err != nil {
		return
	}
	msg := CheckpointShareMsg{Seq: seq, Replica: r.id, Digest: root, PiSig: share}
	r.broadcast(msg)
	r.onCheckpointShare(r.id, msg)
}

func (r *Replica) onCheckpointShare(_ int, m CheckpointShareMsg) {
	if m.Seq <= r.lastStable {
		return
	}
	byDigest := r.ckptShares[m.Seq]
	if byDigest == nil {
		byDigest = make(map[string]map[int]threshsig.Share)
		r.ckptShares[m.Seq] = byDigest
	}
	// One share slot per replica per sequence across digest groups (see
	// onSignState): bounds the table at n entries and rejects duplicate
	// deliveries before the expensive share verification.
	for _, g := range byDigest {
		if _, dup := g[m.Replica]; dup {
			return
		}
	}
	if r.suite.Pi.VerifyShare(CheckpointSigDigest(m.Seq, m.Digest), m.PiSig) != nil {
		return
	}
	group := byDigest[string(m.Digest)]
	if group == nil {
		group = make(map[int]threshsig.Share)
		byDigest[string(m.Digest)] = group
	}
	group[m.Replica] = m.PiSig
	if len(group) < r.cfg.QuorumExec() {
		return
	}
	pi, err := r.suite.Pi.CombineVerified(CheckpointSigDigest(m.Seq, m.Digest), sharesList(group))
	if err != nil {
		return
	}
	r.recordStable(m.Seq, m.Digest, pi)
}

func (r *Replica) onCheckpointCert(_ int, m CheckpointCertMsg) {
	if m.Seq <= r.lastStable {
		return
	}
	if r.suite.Pi.Verify(CheckpointSigDigest(m.Seq, m.Digest), m.Pi) != nil {
		return
	}
	r.recordStable(m.Seq, m.Digest, m.Pi)
	if r.lastExecuted < m.Seq {
		// We are behind a stable checkpoint: fetch state if the gap is
		// not recoverable through the normal pipeline.
		r.maybeFetchState(m.Seq)
	}
}

func (r *Replica) recordStable(seq uint64, digest []byte, pi threshsig.Signature) {
	if seq <= r.lastStable && r.stableDigest != nil {
		return
	}
	r.Metrics.Checkpoints++
	r.lastStable = seq
	if seq > r.windowBase {
		r.windowBase = seq
	}
	r.stableDigest = digest
	r.stablePi = pi
	if r.lastExecuted >= seq {
		// Adopt the certified snapshot captured when seq executed; if none
		// exists (restart, state transfer) capture now — but only when
		// execution has not pipelined past seq, or current state would be
		// mislabeled with the older certified digest and rejected by every
		// receiver. A capture whose root disagrees with the quorum-proven
		// digest must not be served: this replica has diverged and its
		// chunks would (correctly) be blamed by every fetcher.
		cs, ok := r.pendingSnap[seq]
		if !ok && r.lastExecuted == seq && (r.snapshot == nil || r.snapshot.Seq < seq) {
			if built, err := r.buildSnapshot(seq, r.app.Digest()); err == nil {
				cs, ok = built, true
			}
		}
		if ok {
			if bytes.Equal(cs.Root(), digest) {
				cs.Pi = pi
				r.adoptSnapshot(cs)
			} else {
				r.tracef("checkpoint %d: local root disagrees with certified digest", seq)
			}
		}
		for s := range r.pendingSnap {
			if s <= seq {
				delete(r.pendingSnap, s)
			}
		}
		r.app.GarbageCollect(seq)
	}
	// Drop slot state below the stable point — but never ahead of local
	// execution, or committed-but-unexecuted blocks would be lost.
	gcTo := seq
	if r.lastExecuted < gcTo {
		gcTo = r.lastExecuted
	}
	for s := range r.slots {
		if s <= gcTo {
			delete(r.slots, s)
		}
	}
	for s := range r.ckptShares {
		if s <= seq {
			delete(r.ckptShares, s)
		}
	}
	for s := range r.directReq {
		if s <= gcTo {
			delete(r.directReq, s)
		}
	}
	if r.lastExecuted < seq {
		// The network proved a stable state we have not reached: catch up
		// via state transfer (§VIII).
		r.maybeFetchState(seq)
	}
}

// buildSnapshot captures the certified execution state at seq: the
// application snapshot plus the canonical last-reply table, chunked and
// Merkle-committed. Valid only while app state and reply table are exactly
// at seq.
func (r *Replica) buildSnapshot(seq uint64, appDigest []byte) (*CertifiedSnapshot, error) {
	appSnap, err := r.app.Snapshot()
	if err != nil {
		return nil, err
	}
	return NewCertifiedSnapshot(seq, appDigest, appSnap, encodeReplyTable(r.replyCache)), nil
}

// adoptSnapshot installs a stable certified snapshot for serving and, when
// the block store supports it, persists it (replacing older ones) so a
// restarted replica can serve state transfer immediately. Persistence is
// synchronous on the event loop — one encode+write per win/2 executions,
// the same cadence as the snapshot capture itself; replicas with very
// large state that need an async store hook: see ROADMAP.
func (r *Replica) adoptSnapshot(cs *CertifiedSnapshot) {
	if r.snapshot != nil && r.snapshot.Seq >= cs.Seq {
		return
	}
	r.snapshot = cs
	if ss, ok := r.store.(SnapshotStore); ok && r.store != nil {
		if err := ss.SaveSnapshot(cs.Seq, cs.Encode()); err != nil {
			r.tracef("persisting snapshot %d failed: %v", cs.Seq, err)
		} else if err := ss.PruneSnapshots(cs.Seq); err != nil {
			r.tracef("pruning snapshots below %d failed: %v", cs.Seq, err)
		}
	}
}

// SnapshotSeq reports the sequence of the certified snapshot this replica
// can serve (0 when none).
func (r *Replica) SnapshotSeq() uint64 {
	if r.snapshot == nil {
		return 0
	}
	return r.snapshot.Seq
}

// SnapshotBlameCounts reports, per server id, how many pieces of snapshot
// material from that server failed verification against a certified root.
func (r *Replica) SnapshotBlameCounts() map[int]int {
	out := make(map[int]int, len(r.snapshotBlames))
	for id, n := range r.snapshotBlames {
		out[id] = n
	}
	return out
}

// stateFetch tracks one in-progress chunked state transfer.
type stateFetch struct {
	target uint64 // minimum acceptable snapshot sequence
	// Filled once a verified SnapshotMetaMsg is accepted:
	seq     uint64
	root    []byte
	pi      threshsig.Signature
	header  SnapshotHeader
	chunks  [][]byte
	missing int
	// blamed servers are excluded from further requests this transfer.
	blamed  map[int]bool
	attempt int
	cancel  func()
}

// fetchPeers lists the servers still eligible for this transfer. If every
// peer has been blamed the set resets: with at most f Byzantine servers a
// full blame list means transient corruption, not a hostile majority.
func (r *Replica) fetchPeers(f *stateFetch) []int {
	peers := make([]int, 0, r.cfg.N()-1)
	for id := 1; id <= r.cfg.N(); id++ {
		if id != r.id && !f.blamed[id] {
			peers = append(peers, id)
		}
	}
	if len(peers) == 0 {
		f.blamed = make(map[int]bool)
		for id := 1; id <= r.cfg.N(); id++ {
			if id != r.id {
				peers = append(peers, id)
			}
		}
	}
	return peers
}

// blameSnapshotServer records a server whose snapshot material failed
// verification against the certified root (§VIII: any single honest server
// suffices; a tampering one is excluded and provably at fault, since
// correct material is Merkle-provable against a threshold-signed root).
func (r *Replica) blameSnapshotServer(f *stateFetch, id int, why string) {
	r.tracef("blaming snapshot server %d: %s", id, why)
	f.blamed[id] = true
	r.snapshotBlames[id]++
	r.Metrics.SnapshotBlames++
}

func (r *Replica) maybeFetchState(target uint64) {
	if r.lastExecuted >= target {
		return
	}
	if r.fetch != nil {
		if target > r.fetch.target {
			r.fetch.target = target
		}
		return
	}
	r.fetch = &stateFetch{target: target, blamed: make(map[int]bool)}
	r.Metrics.StateFetches++
	r.sendFetchState()
	r.armFetchRetry()
}

// sendFetchState asks one (rotating) peer for snapshot metadata.
func (r *Replica) sendFetchState() {
	f := r.fetch
	peers := r.fetchPeers(f)
	peer := peers[(int(f.target)+f.attempt)%len(peers)]
	r.env.Send(peer, FetchStateMsg{Replica: r.id, Seq: f.target})
}

// dropStaleFetch cancels an in-progress state transfer that can no longer
// deliver anything: local execution caught up with both the requested
// target and (if metadata was already accepted) the transfer's snapshot
// sequence. Without this, a replica that catches up through gap repair
// keeps an immortal retry timer and may later re-download a snapshot it
// does not need.
func (r *Replica) dropStaleFetch() {
	f := r.fetch
	if f == nil || r.lastExecuted < f.target || r.lastExecuted < f.seq {
		return
	}
	if f.cancel != nil {
		f.cancel()
	}
	r.fetch = nil
}

// armFetchRetry re-drives a stalled transfer: metadata requests rotate to
// the next peer, missing chunks are re-requested across the eligible set,
// and every few attempts the metadata request repeats even mid-transfer —
// servers garbage-collect superseded snapshots, so a transfer locked to a
// checkpoint the whole cluster has advanced past must discover the newer
// one and restart rather than re-request dead chunks forever.
func (r *Replica) armFetchRetry() {
	f := r.fetch
	f.cancel = r.env.After(4*r.cfg.ViewChangeTimeout/3, func() {
		if r.fetch != f {
			return
		}
		r.dropStaleFetch()
		if r.fetch != f {
			return
		}
		f.attempt++
		if f.seq == 0 || f.attempt%3 == 0 {
			r.sendFetchState()
		}
		if f.seq != 0 {
			r.requestMissingChunks()
		}
		r.armFetchRetry()
	})
}

func (r *Replica) onFetchState(_ int, m FetchStateMsg) {
	if r.snapshot == nil || r.snapshot.Seq < m.Seq {
		return
	}
	hp, err := r.snapshot.ProveHeader()
	if err != nil {
		return
	}
	r.env.Send(m.Replica, SnapshotMetaMsg{
		Seq:         r.snapshot.Seq,
		Root:        r.snapshot.Root(),
		Pi:          r.snapshot.Pi,
		Header:      r.snapshot.Header,
		HeaderProof: hp,
	})
}

func (r *Replica) onSnapshotMeta(from int, m SnapshotMetaMsg) {
	r.dropStaleFetch()
	f := r.fetch
	if f == nil || m.Seq <= r.lastExecuted || m.Seq < f.target {
		return
	}
	// Mid-transfer, only a strictly newer certified snapshot is
	// interesting: it means servers advanced past (and garbage-collected)
	// the one being fetched, so the transfer restarts there. Metadata for
	// the sequence already in flight, or older, is ignored.
	if f.seq != 0 && m.Seq <= f.seq {
		return
	}
	if from < 1 || from > r.cfg.N() || from == r.id {
		return
	}
	// π over the certified root, then the header's membership proof: after
	// this every chunk is independently verifiable, from any server.
	if r.suite.Pi.Verify(CheckpointSigDigest(m.Seq, m.Root), m.Pi) != nil {
		r.blameSnapshotServer(f, from, "snapshot certificate invalid")
		return
	}
	if err := VerifySnapshotHeader(m.Root, m.Header, m.HeaderProof); err != nil {
		r.blameSnapshotServer(f, from, err.Error())
		return
	}
	if f.seq != 0 {
		r.tracef("state transfer restarting at %d (superseded %d)", m.Seq, f.seq)
	}
	f.seq = m.Seq
	f.root = append([]byte(nil), m.Root...)
	f.pi = m.Pi
	f.header = m.Header
	f.chunks = make([][]byte, m.Header.NumChunks())
	f.missing = len(f.chunks)
	r.tracef("state transfer to %d: %d chunks", f.seq, f.missing)
	if f.missing == 0 {
		r.finishStateFetch()
		return
	}
	r.requestMissingChunks()
}

// requestMissingChunks spreads requests for the outstanding chunks across
// the eligible servers (round-robin, rotated by retry attempt), so the
// transfer parallelizes and survives any minority of tampering servers.
func (r *Replica) requestMissingChunks() {
	f := r.fetch
	peers := r.fetchPeers(f)
	for i, c := range f.chunks {
		if c != nil {
			continue
		}
		idx := i + 1
		peer := peers[(idx+f.attempt)%len(peers)]
		r.env.Send(peer, FetchSnapshotChunkMsg{Replica: r.id, Seq: f.seq, Index: idx})
	}
}

func (r *Replica) onFetchSnapshotChunk(_ int, m FetchSnapshotChunkMsg) {
	if r.snapshot == nil {
		return
	}
	if r.snapshot.Seq != m.Seq {
		// A request for a superseded snapshot: its chunks are gone, but
		// re-offering the current metadata lets the fetcher restart at
		// the checkpoint this server can actually serve.
		if r.snapshot.Seq > m.Seq {
			r.onFetchState(m.Replica, FetchStateMsg{Replica: m.Replica, Seq: m.Seq})
		}
		return
	}
	if m.Index < 1 || m.Index > len(r.snapshot.Chunks) {
		return
	}
	proof, err := r.snapshot.ProveChunk(m.Index)
	if err != nil {
		return
	}
	r.env.Send(m.Replica, SnapshotChunkMsg{
		Seq:   m.Seq,
		Index: m.Index,
		Data:  r.snapshot.Chunks[m.Index-1],
		Proof: proof,
	})
}

func (r *Replica) onSnapshotChunk(from int, m SnapshotChunkMsg) {
	f := r.fetch
	if f == nil || f.seq == 0 || m.Seq != f.seq {
		return
	}
	if from < 1 || from > r.cfg.N() || from == r.id {
		return
	}
	if m.Index < 1 || m.Index > len(f.chunks) || f.chunks[m.Index-1] != nil {
		return
	}
	if err := VerifySnapshotChunk(f.root, f.header, m.Index, m.Data, m.Proof); err != nil {
		// Tampered or corrupt: blame the sender and re-fetch this chunk
		// from a different server immediately.
		r.blameSnapshotServer(f, from, fmt.Sprintf("chunk %d: %v", m.Index, err))
		peers := r.fetchPeers(f)
		peer := peers[(m.Index+f.attempt)%len(peers)]
		r.env.Send(peer, FetchSnapshotChunkMsg{Replica: r.id, Seq: f.seq, Index: m.Index})
		return
	}
	f.chunks[m.Index-1] = m.Data
	f.missing--
	r.Metrics.SnapshotChunks++
	if f.missing == 0 {
		r.finishStateFetch()
	}
}

// finishStateFetch installs a fully transferred, chunk-verified snapshot:
// restore the application, replace the last-reply table with the CERTIFIED
// one (the exactly-once filter's state is now exactly what the π quorum
// signed), and resume from the restored frontier.
func (r *Replica) finishStateFetch() {
	f := r.fetch
	if r.lastExecuted >= f.seq {
		// Execution advanced past the transfer while chunks were in
		// flight (gap repair): installing now would ROLL BACK application
		// state and the reply table. Drop the transfer; if a raised
		// target still lies ahead, start over against it.
		if f.cancel != nil {
			f.cancel()
		}
		r.fetch = nil
		r.maybeFetchState(f.target)
		return
	}
	appBytes, tableBytes, err := AssembleSnapshot(f.header, f.chunks)
	if err != nil {
		// Unreachable with verified chunks; restart the transfer.
		r.tracef("state transfer assembly failed: %v", err)
		r.abortStateFetch()
		return
	}
	table, err := decodeReplyTable(tableBytes)
	if err != nil {
		// The certified table itself is malformed: the honest quorum never
		// signs one, so this replica's decoder and the cluster disagree —
		// do not install half a snapshot.
		r.tracef("state transfer reply table malformed: %v", err)
		r.abortStateFetch()
		return
	}
	if err := r.app.Restore(appBytes); err != nil {
		r.tracef("state transfer restore failed: %v", err)
		r.abortStateFetch()
		return
	}
	if !bytes.Equal(r.app.Digest(), f.header.AppDigest) {
		// Defense in depth: chunks were leaf-verified, so this indicates
		// local divergence, not a tampering server.
		r.tracef("state transfer: restored app digest mismatch")
		r.abortStateFetch()
		return
	}
	r.replyCache = table
	for client, e := range table {
		if ts := r.seen[client]; ts < e.timestamp {
			r.seen[client] = e.timestamp
		}
	}
	seq, root, pi := f.seq, f.root, f.pi
	cs := &CertifiedSnapshot{Seq: seq, Header: f.header, Chunks: f.chunks, Pi: pi}
	cs.build()
	if f.cancel != nil {
		f.cancel()
	}
	r.fetch = nil
	r.lastExecuted = seq
	r.adoptSnapshot(cs)
	r.tracef("state transfer complete at %d (%d servers blamed)", seq, len(f.blamed))
	r.recordStable(seq, root, pi)
	r.executeReady()
}

// abortStateFetch cancels the current transfer; the protocol will retrigger
// state transfer from recordStable/maybeFetchState when still behind.
func (r *Replica) abortStateFetch() {
	if r.fetch == nil {
		return
	}
	target := r.fetch.target
	if r.fetch.cancel != nil {
		r.fetch.cancel()
	}
	r.fetch = nil
	r.maybeFetchState(target)
}
