package core

import (
	"sort"
	"time"

	"sbft/internal/crypto/threshsig"
)

// This file implements SBFT's dual-mode view change (§V-G): the protocol
// that preserves safety when the fast path and the linear-PBFT path run
// concurrently, and liveness through exponential back-off and the f+1 join
// rule (§VII).

// maxBackoffShift caps the exponential view-change back-off.
const maxBackoffShift = 6

func (r *Replica) vcTimeout() time.Duration {
	shift := r.vcBackoff
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return r.cfg.ViewChangeTimeout << shift
}

// hasOutstandingWork reports whether the replica is waiting on progress:
// watched client requests or accepted-but-uncommitted blocks.
func (r *Replica) hasOutstandingWork() bool {
	if len(r.watch) > 0 {
		return true
	}
	for _, s := range r.slots {
		if s.hasPrePrepare && !s.committed {
			return true
		}
	}
	return false
}

// armProgressTimer arms the liveness timer if it is not already running:
// if no execution progress happens before it fires, the replica starts a
// view change (§VII). It deliberately does NOT reset a pending timer —
// duplicate client retries must not postpone the timeout.
func (r *Replica) armProgressTimer() {
	if r.progressTimer != nil || r.inViewChange || !r.hasOutstandingWork() {
		return
	}
	r.progressTimer = r.env.After(r.vcTimeout(), func() {
		r.progressTimer = nil
		if !r.inViewChange && r.hasOutstandingWork() {
			// A replica catching up through an ADVANCING state transfer is
			// stalled behind the fetch, not behind a faulty primary: the
			// certified checkpoints feeding the transfer prove the cluster
			// is making progress, so a view change would only tear this
			// replica out of the view everyone else is happily in. A
			// genuinely cluster-wide stall still reaches it through the
			// f+1 view-change join rule (§VII); a DEAD transfer falls
			// through to the normal timeout below.
			if f := r.fetch; f != nil && !r.fetchStalled(f) {
				r.armProgressTimer()
				return
			}
			r.tracef("progress timeout → view change")
			r.startViewChange(r.view + 1)
		}
	})
}

// resetProgressTimer restarts the liveness timer after real progress
// (execution frontier advanced or a new view installed).
func (r *Replica) resetProgressTimer() {
	if r.progressTimer != nil {
		r.progressTimer()
		r.progressTimer = nil
	}
	r.armProgressTimer()
}

// startViewChange moves the replica to the view-change state targeting
// `target` and broadcasts its view-change message.
func (r *Replica) startViewChange(target uint64) {
	if target <= r.view && r.inViewChange {
		return
	}
	if target <= r.view {
		target = r.view + 1
	}
	r.inViewChange = true
	r.view = target
	r.Metrics.ViewChanges++
	if r.progressTimer != nil {
		r.progressTimer()
		r.progressTimer = nil
	}
	if r.batchTimer != nil {
		r.batchTimer()
		r.batchTimer = nil
	}
	if !r.vcSent[target] {
		r.vcSent[target] = true
		vc := r.buildViewChange(target)
		r.broadcast(vc)
		r.onViewChange(r.id, vc)
	}
	// If the new primary fails to install the view, escalate.
	if r.vcTimer != nil {
		r.vcTimer()
	}
	r.vcBackoff++
	r.vcTimer = r.env.After(r.vcTimeout(), func() {
		r.vcTimer = nil
		if r.inViewChange {
			r.startViewChange(r.view + 1)
		}
	})
}

// buildViewChange assembles ⟨"view-change", v, ls, x_ls..x_ls+win⟩ from
// local slot state (§V-G view-change phase).
func (r *Replica) buildViewChange(target uint64) ViewChangeMsg {
	vc := ViewChangeMsg{
		NewView:      target,
		Replica:      r.id,
		LastStable:   r.lastStable,
		StableDigest: r.stableDigest,
		StablePi:     r.stablePi,
	}
	seqs := make([]uint64, 0, len(r.slots))
	for seq := range r.slots {
		if seq > r.lastStable && seq <= r.lastStable+r.cfg.Win {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		s := r.slots[seq]
		si := SlotInfo{Seq: seq}
		used := false

		// lm_j: slow-path evidence.
		if s.commitSlow != nil {
			si.HasCommitProofSlow = true
			si.TauTau = s.commitSlow.TauTau
			si.Tau = s.commitSlow.Tau
			si.SlowView = s.commitSlowView
			si.SlowReqs = s.committedReqs
			used = true
		} else if s.hasPrepare {
			si.HasPrepare = true
			si.PrepareTau = s.prepareTau
			si.PrepareView = s.prepareView
			si.PrepareReqs = s.prepareReqs
			used = true
		}

		// fm_j: fast-path evidence.
		if s.commitProof != nil {
			si.HasCommitProof = true
			si.Sigma = s.commitProof.Sigma
			si.FastView = s.commitProofView
			si.FastReqs = s.committedReqs
			used = true
		} else if s.hasPrePrepare {
			hash := BlockHash(seq, s.prePrepareView, s.reqs)
			if share, err := r.keys.Sigma.Sign(hash[:]); err == nil {
				si.HasPrePrepare = true
				si.SigmaShare = share
				si.PrePrepareView = s.prePrepareView
				si.PrePrepareReqs = s.reqs
				used = true
			}
		}
		if used {
			vc.Slots = append(vc.Slots, si)
		}
	}
	return vc
}

// validateViewChange checks the stable-checkpoint proof of a view-change
// message. Slot components are validated individually during safe-value
// computation so a Byzantine replica cannot poison the whole message.
func (r *Replica) validateViewChange(vc *ViewChangeMsg) bool {
	if vc.LastStable == 0 {
		return true
	}
	return r.suite.Pi.Verify(CheckpointSigDigest(vc.LastStable, vc.StableDigest), vc.StablePi) == nil
}

func (r *Replica) onViewChange(from int, m ViewChangeMsg) {
	if from != m.Replica {
		return // authenticated channels bind sender identity (§V-B)
	}
	if m.NewView <= r.view && !(m.NewView == r.view && r.inViewChange) {
		return
	}
	if !r.validateViewChange(&m) {
		return
	}
	if r.vcMsgs[m.NewView] == nil {
		r.vcMsgs[m.NewView] = make(map[int]*ViewChangeMsg)
	}
	if _, dup := r.vcMsgs[m.NewView][m.Replica]; dup {
		return
	}
	r.vcMsgs[m.NewView][m.Replica] = &m

	// A primary that was down while the cohort broadcast its view-change
	// messages rejoins by escalating on its own: it announces the target
	// view holding only its own message, and nobody rebroadcasts (vcSent
	// gates the original broadcast). Seeing the primary of v itself demand
	// v is the cue to re-unicast our view-change, so the new-view quorum
	// can assemble at the one replica able to install it. One resend per
	// target view bounds the overhead at a single extra message.
	if m.Replica == r.cfg.Primary(m.NewView) && m.Replica != r.id &&
		r.vcSent[m.NewView] && !r.vcResent[m.NewView] {
		r.vcResent[m.NewView] = true
		r.env.Send(m.Replica, r.buildViewChange(m.NewView))
	}

	// f+1 join rule (§VII): if f+1 distinct replicas demand views above
	// ours, join the smallest such view.
	if !r.inViewChange || m.NewView > r.view {
		distinct := make(map[int]bool)
		minAbove := uint64(0)
		for tv, senders := range r.vcMsgs {
			if tv <= r.view {
				continue
			}
			for id := range senders {
				distinct[id] = true
			}
			if minAbove == 0 || tv < minAbove {
				minAbove = tv
			}
		}
		if len(distinct) > r.cfg.F && minAbove > r.view {
			r.tracef("joining view change to %d (f+1 rule)", minAbove)
			r.startViewChange(minAbove)
		}
	}

	// New-primary phase: gather 2f+2c+1 view-change messages (§V-G).
	r.tryInstallView(m.NewView)
}

func (r *Replica) tryInstallView(target uint64) {
	if r.cfg.Primary(target) != r.id {
		return
	}
	if target < r.view || (target == r.view && !r.inViewChange) {
		return
	}
	msgs := r.vcMsgs[target]
	if len(msgs) < r.cfg.QuorumViewChange() {
		return
	}
	ids := make([]int, 0, len(msgs))
	for id := range msgs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	ids = ids[:r.cfg.QuorumViewChange()]
	nv := NewViewMsg{View: target}
	for _, id := range ids {
		nv.ViewChanges = append(nv.ViewChanges, *msgs[id])
	}
	r.tracef("installing view %d with %d view-change messages", target, len(nv.ViewChanges))
	r.broadcast(nv)
	r.onNewView(r.id, nv)
}

// slotDecision is the outcome of the safe-value computation for one slot.
type slotDecision struct {
	seq uint64
	// decided: a commit certificate was present; commit reqs directly.
	decided bool
	// reqs is the value to adopt (nil-length = null block) when !decided.
	reqs []Request
}

// computeSafeValues runs the §V-G new-view computation over a validated
// set of view-change messages, returning per-slot decisions for
// (ls, maxUsed]. All replicas run it identically, so they agree without
// trusting the new primary (§VII).
func computeSafeValues(cfg Config, suite CryptoSuite, newView uint64, vcs []ViewChangeMsg) (ls uint64, decisions []slotDecision) {
	// ls := highest correctly-proven stable sequence number.
	for _, vc := range vcs {
		if vc.LastStable > ls {
			ls = vc.LastStable
		}
	}
	maxUsed := ls
	for _, vc := range vcs {
		for _, si := range vc.Slots {
			if si.Seq > maxUsed {
				maxUsed = si.Seq
			}
		}
	}
	for j := ls + 1; j <= maxUsed; j++ {
		decisions = append(decisions, computeSlotDecision(cfg, suite, j, vcs))
	}
	return ls, decisions
}

// computeSlotDecision implements the per-slot safe-value rules of §V-G.
func computeSlotDecision(cfg Config, suite CryptoSuite, j uint64, vcs []ViewChangeMsg) slotDecision {
	dec := slotDecision{seq: j}

	type fastShare struct {
		view uint64
		key  string
		reqs []Request
	}
	var fastShares []fastShare

	// v* and req*: the highest valid prepare certificate (slow path).
	vStar := int64(-1)
	var reqStar []Request

	for _, vc := range vcs {
		for _, si := range vc.Slots {
			if si.Seq != j {
				continue
			}
			// Decided certificates short-circuit.
			if si.HasCommitProofSlow {
				h := BlockHash(j, si.SlowView, si.SlowReqs)
				if suite.Tau.Verify(h[:], si.Tau) == nil &&
					suite.Tau.Verify(tauTauDigest(si.Tau), si.TauTau) == nil {
					dec.decided = true
					dec.reqs = si.SlowReqs
					return dec
				}
			}
			if si.HasCommitProof {
				h := BlockHash(j, si.FastView, si.FastReqs)
				if suite.Sigma.Verify(h[:], si.Sigma) == nil {
					dec.decided = true
					dec.reqs = si.FastReqs
					return dec
				}
			}
			if si.HasPrepare {
				h := BlockHash(j, si.PrepareView, si.PrepareReqs)
				if suite.Tau.Verify(h[:], si.PrepareTau) == nil {
					if int64(si.PrepareView) > vStar {
						vStar = int64(si.PrepareView)
						reqStar = si.PrepareReqs
					}
				}
			}
			if si.HasPrePrepare {
				h := BlockHash(j, si.PrePrepareView, si.PrePrepareReqs)
				if si.SigmaShare.Signer == vc.Replica &&
					suite.Sigma.VerifyShare(h[:], si.SigmaShare) == nil {
					key := reqsKey(si.PrePrepareReqs)
					fastShares = append(fastShares, fastShare{
						view: si.PrePrepareView,
						key:  key,
						reqs: si.PrePrepareReqs,
					})
				}
			}
		}
	}

	// v̂ and req̂: the highest view for which a unique value is "fast":
	// f+c+1 shares each with view ≥ v̂ (§V-G rule 2).
	need := cfg.F + cfg.C + 1
	byKey := make(map[string][]fastShare)
	for _, fs := range fastShares {
		byKey[fs.key] = append(byKey[fs.key], fs)
	}
	vHat := int64(-1)
	var reqHat []Request
	unique := true
	for _, group := range byKey {
		if len(group) < need {
			continue
		}
		views := make([]uint64, len(group))
		for i, fs := range group {
			views[i] = fs.view
		}
		sort.Slice(views, func(a, b int) bool { return views[a] > views[b] })
		vMax := int64(views[need-1]) // best v with f+c+1 shares of view ≥ v
		switch {
		case vMax > vHat:
			vHat = vMax
			reqHat = group[0].reqs
			unique = true
		case vMax == vHat && reqsKey(reqHat) != group[0].key:
			unique = false
		}
	}
	if !unique {
		vHat = -1
	}

	// Final selection (§V-G rule 3): prefer the slow-path proof on ties.
	switch {
	case vStar >= vHat && vStar > -1:
		dec.reqs = reqStar
	case vHat > vStar:
		dec.reqs = reqHat
	default:
		dec.reqs = nil // null block
	}
	return dec
}

// reqsKey is a view-independent identity for a request block.
func reqsKey(reqs []Request) string {
	h := BlockHash(0, 0, reqs)
	return string(h[:])
}

func (r *Replica) onNewView(from int, m NewViewMsg) {
	if from != r.cfg.Primary(m.View) {
		return
	}
	if m.View < r.view || (m.View == r.view && !r.inViewChange) {
		return
	}
	// Validate the certificate set: quorum size, distinct senders, right
	// target view, valid stable proofs.
	if len(m.ViewChanges) < r.cfg.QuorumViewChange() {
		return
	}
	senders := make(map[int]bool)
	for i := range m.ViewChanges {
		vc := &m.ViewChanges[i]
		if vc.NewView != m.View || senders[vc.Replica] || !r.validateViewChange(vc) {
			return
		}
		senders[vc.Replica] = true
	}

	ls, decisions := computeSafeValues(r.cfg, r.suite, m.View, m.ViewChanges)
	r.tracef("new view %d: ls=%d, %d slots", m.View, ls, len(decisions))

	// Enter the view.
	r.view = m.View
	r.inViewChange = false
	r.vcBackoff = 0
	if r.vcTimer != nil {
		r.vcTimer()
		r.vcTimer = nil
	}
	for tv := range r.vcMsgs {
		if tv <= m.View {
			delete(r.vcMsgs, tv)
		}
	}
	for tv := range r.vcSent {
		if tv <= m.View {
			delete(r.vcSent, tv)
		}
	}
	for tv := range r.vcResent {
		if tv <= m.View {
			delete(r.vcResent, tv)
		}
	}

	// Advance the stable point if the quorum proved a higher one.
	if ls > r.lastStable {
		var dig []byte
		var pi threshsig.Signature
		for i := range m.ViewChanges {
			if m.ViewChanges[i].LastStable == ls {
				dig = m.ViewChanges[i].StableDigest
				pi = m.ViewChanges[i].StablePi
				break
			}
		}
		r.recordStable(ls, dig, pi)
	}

	// Reset volatile per-slot state for the new view, keeping evidence
	// needed by future view changes (prepare certificates persist).
	for _, s := range r.slots {
		if s.committed {
			continue
		}
		// Requests stuck in an uncommitted slot would be lost if the new
		// view does not adopt that slot (the proposer's pending queue
		// already dropped them and client retries are deduplicated by
		// `seen`): requeue them for re-proposal. The pending prune below
		// removes any the new view does carry.
		for _, req := range s.reqs {
			r.requeue(req)
		}
		s.sentSignShare = false
		s.sentCommitShare = false
		s.hasPrePrepare = false
		s.resetCollector(m.View)
	}

	// Apply decisions.
	maxSeq := r.lastStable
	inFlight := make(map[int]uint64) // client → highest ts re-proposed/decided
	for _, dec := range decisions {
		if dec.seq > maxSeq {
			maxSeq = dec.seq
		}
		for _, req := range dec.reqs {
			if ts := inFlight[req.Client]; ts < req.Timestamp {
				inFlight[req.Client] = req.Timestamp
			}
		}
		s := r.getSlot(dec.seq)
		if dec.decided {
			if !s.committed {
				if dec.reqs == nil {
					dec.reqs = []Request{}
				}
				s.reqs = dec.reqs
				s.hash = BlockHash(dec.seq, m.View, dec.reqs)
				r.commit(s, dec.reqs)
			}
			continue
		}
		reqs := dec.reqs
		if reqs == nil {
			reqs = []Request{}
		}
		r.acceptPrePrepare(r.cfg.Primary(m.View), PrePrepareMsg{Seq: dec.seq, View: m.View, Reqs: reqs})
	}

	// Requests the new view already carries (re-proposed or decided above)
	// must not be proposed again from the retained pending queue, or the
	// same request would commit at two sequence numbers and execute twice.
	if len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, req := range r.pending {
			if ts, ok := inFlight[req.Client]; ok && ts >= req.Timestamp {
				r.pendingIdxDel(req)
				continue
			}
			if ent, ok := r.replyCache[req.Client]; ok && ent.timestamp >= req.Timestamp {
				r.pendingIdxDel(req)
				continue
			}
			kept = append(kept, req)
		}
		r.pending = kept
	}

	if r.isPrimary() {
		r.nextSeq = maxSeq + 1
		r.proposeIfReady(true)
	}
	// Replay pre-prepares that raced ahead of this view installation.
	if buf := r.ppBuffer[m.View]; len(buf) > 0 {
		delete(r.ppBuffer, m.View)
		for _, pp := range buf {
			r.onPrePrepare(r.cfg.Primary(m.View), pp)
		}
	}
	for v := range r.ppBuffer {
		if v <= m.View {
			delete(r.ppBuffer, v)
		}
	}
	if r.lastExecuted < r.lastStable {
		r.maybeFetchState(r.lastStable)
	}
	r.resetProgressTimer()
}

// ---------------------------------------------------------------------------
// View synchronizer (§VII liveness): a replica that escalated into a view
// change alone — its progress timer fired on locally-missing traffic the
// rest of the cluster never lost — would previously keep escalating views
// forever while the cluster committed happily without it (the carried
// lone-view-changer hole: fewer than f+1 peers share its suspicion, so the
// join rule never pulls anyone up, and nothing pulled the loner back
// down). The synchronizer closes the hole: certified commit traffic for a
// view LOWER than the loner's own target is cryptographic proof the
// cluster is live in that view, so the replica stands back down and
// rejoins it. Only σ/τ certificates over a known pre-prepare count —
// uncertified chatter (which a Byzantine peer could replay) cannot trigger
// a rejoin.

// rejoinView stands the replica down from a solo view-change escalation
// into the certified lower view. Callers have already verified a commit
// certificate for that view.
func (r *Replica) rejoinView(view uint64) {
	if !r.inViewChange || view >= r.view {
		return
	}
	r.tracef("view synchronizer: certified traffic in view %d, rejoining (was escalating to %d)", view, r.view)
	r.Metrics.ViewRejoins++
	r.view = view
	r.inViewChange = false
	r.vcBackoff = 0
	if r.vcTimer != nil {
		r.vcTimer()
		r.vcTimer = nil
	}
	// Allow a genuine future escalation to rebroadcast its view-change
	// message: the suspicion that produced the abandoned targets is void.
	for tv := range r.vcSent {
		if tv > view {
			delete(r.vcSent, tv)
		}
	}
	for tv := range r.vcResent {
		if tv > view {
			delete(r.vcResent, tv)
		}
	}
	r.resetProgressTimer()
}

// tryRejoinView attempts a rejoin from stashed evidence: a commit proof
// for (seq, view) arrived while this replica sat in a view change above
// `view` without having accepted that view's pre-prepare. If the matching
// pre-prepare is buffered and the stashed certificate verifies against its
// block hash, the pair proves the lower view live; rejoin and replay.
func (r *Replica) tryRejoinView(seq, view uint64) {
	if !r.inViewChange || view >= r.view || seq <= r.lastExecuted {
		return
	}
	var pp *PrePrepareMsg
	for i := range r.ppBuffer[view] {
		if r.ppBuffer[view][i].Seq == seq {
			pp = &r.ppBuffer[view][i]
			break
		}
	}
	if pp == nil {
		return
	}
	s := r.getSlot(seq)
	h := BlockHash(seq, view, pp.Reqs)
	certified := s.pendingFast != nil && s.pendingFast.View == view &&
		r.suite.Sigma.Verify(h[:], s.pendingFast.Sigma) == nil
	if !certified {
		certified = s.pendingSlow != nil && s.pendingSlow.View == view &&
			r.suite.Tau.Verify(h[:], s.pendingSlow.Tau) == nil &&
			r.suite.Tau.Verify(tauTauDigest(s.pendingSlow.Tau), s.pendingSlow.TauTau) == nil
	}
	if !certified {
		return
	}
	r.rejoinView(view)
	// Replay the rejoined view's buffered pre-prepares; accepting them
	// replays the stashed certificates, committing the proven slots.
	buf := r.ppBuffer[view]
	delete(r.ppBuffer, view)
	for _, b := range buf {
		r.onPrePrepare(r.cfg.Primary(view), b)
	}
}
