package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements replica restart from durable storage. The paper's
// deployment persists committed transactions to disk (RocksDB, §IX);
// internal/storage provides the substitute log. A replica that crashes and
// restarts replays its block log through the application — recovering the
// exact pre-crash state because execution is deterministic — and then
// rejoins the protocol, catching up on anything it missed through the
// normal gap-repair and state-transfer paths (§II re-transmit layer,
// §VIII state transfer).

// BlockRecord is the durable form of one committed decision block: the
// requests and the per-request execution results. Records are
// self-contained so a restarted replica can rebuild both application state
// (by re-executing) and its client reply cache (from the stored results).
type BlockRecord struct {
	Reqs    []Request
	Results [][]byte
}

// EncodeBlockPayload serializes a block record for the BlockStore (shared
// by the SBFT and PBFT engines so both logs recover the same way).
func EncodeBlockPayload(reqs []Request, results [][]byte) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(BlockRecord{Reqs: reqs, Results: results}); err != nil {
		// Requests and results are plain slices and ints; encoding cannot
		// fail for well-formed inputs.
		panic(fmt.Sprintf("core: encoding block record: %v", err))
	}
	return buf.Bytes()
}

// DecodeBlockPayload parses a stored block record (the inverse of the
// encoding used by Replica when appending to its BlockStore).
func DecodeBlockPayload(payload []byte) (BlockRecord, error) {
	var rec BlockRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return BlockRecord{}, fmt.Errorf("core: decoding block record: %w", err)
	}
	return rec, nil
}

// ClientReply is the durable/transferable form of one reply-cache entry.
type ClientReply struct {
	Timestamp uint64
	Seq       uint64
	L         int
	Val       []byte
}

// snapshotEnvelope is what replicas actually ship in StateSnapshotMsg: the
// application snapshot plus the last-reply table. The table makes the
// exactly-once execution filter deterministic across replicas that caught
// up via state transfer instead of executing every block. (The π
// checkpoint certificate covers only the application digest; certifying
// the reply table inside the checkpoint digest is future work — see
// ROADMAP — so a Byzantine snapshot server could perturb dedup state. The
// application state itself remains certificate-checked.)
type snapshotEnvelope struct {
	App     []byte
	Replies map[int]ClientReply
}

// encodeSnapshot wraps an application snapshot with the reply table.
func encodeSnapshot(app []byte, cache map[int]replyCacheEntry) []byte {
	env := snapshotEnvelope{App: app, Replies: make(map[int]ClientReply, len(cache))}
	for client, e := range cache {
		env.Replies[client] = ClientReply{Timestamp: e.timestamp, Seq: e.seq, L: e.l, Val: e.val}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		panic(fmt.Sprintf("core: encoding snapshot envelope: %v", err))
	}
	return buf.Bytes()
}

// decodeSnapshot unwraps a snapshot envelope.
func decodeSnapshot(data []byte) (snapshotEnvelope, error) {
	var env snapshotEnvelope
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env); err != nil {
		return snapshotEnvelope{}, fmt.Errorf("core: decoding snapshot envelope: %w", err)
	}
	return env, nil
}

// RecoverableStore is a BlockStore that can be read back on restart.
// storage.Ledger satisfies it.
type RecoverableStore interface {
	BlockStore
	// Get returns the payload appended at seq.
	Get(seq uint64) ([]byte, error)
	// NextSeq reports the sequence number the next Append must carry
	// (one past the highest durable block).
	NextSeq() uint64
}

// NewRecoveredReplica rebuilds a replica from its durable block log: it
// replays every stored block through the application (which must be at
// genesis), verifies the recomputed results against the stored ones, and
// primes the reply cache and execution frontier. The replica then rejoins
// the protocol at its durable frontier; blocks committed by the rest of
// the cluster while it was down arrive through gap repair or state
// transfer.
func NewRecoveredReplica(id int, cfg Config, suite CryptoSuite, keys ReplicaKeys, app Application, env Env, store RecoverableStore) (*Replica, error) {
	r, err := NewReplica(id, cfg, suite, keys, app, env, store)
	if err != nil {
		return nil, err
	}
	frontier := store.NextSeq() - 1
	for seq := uint64(1); seq <= frontier; seq++ {
		payload, err := store.Get(seq)
		if err != nil {
			return nil, fmt.Errorf("core: recovering block %d: %w", seq, err)
		}
		rec, err := DecodeBlockPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("core: recovering block %d: %w", seq, err)
		}
		ops := make([][]byte, len(rec.Reqs))
		for i, req := range rec.Reqs {
			ops[i] = req.Op
		}
		results := app.ExecuteBlock(seq, ops)
		if len(results) != len(rec.Results) {
			return nil, fmt.Errorf("core: block %d replay produced %d results, stored %d", seq, len(results), len(rec.Results))
		}
		for i := range results {
			if !bytes.Equal(results[i], rec.Results[i]) {
				return nil, fmt.Errorf("core: block %d result %d diverged on replay (corrupt store or non-deterministic app)", seq, i)
			}
		}
		for i, req := range rec.Reqs {
			r.replyCache[req.Client] = replyCacheEntry{
				timestamp: req.Timestamp, seq: seq, l: i, val: results[i],
			}
			if ts := r.seen[req.Client]; ts < req.Timestamp {
				r.seen[req.Client] = req.Timestamp
			}
		}
		r.lastExecuted = seq
		r.Metrics.Executions++
	}
	// Anchor the protocol window at the durable frontier: pre-prepares at
	// or below it are stale, and a primary role resumed here must propose
	// above it. The stable checkpoint (lastStable) stays at 0 — stability
	// is a quorum property the restarted replica re-learns from its peers.
	r.windowBase = frontier
	if r.nextSeq <= frontier {
		r.nextSeq = frontier + 1
	}
	return r, nil
}
