package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements replica restart from durable storage. The paper's
// deployment persists committed transactions to disk (RocksDB, §IX);
// internal/storage provides the substitute log. A replica that crashes and
// restarts replays its block log through the application — recovering the
// exact pre-crash state because execution is deterministic — and then
// rejoins the protocol, catching up on anything it missed through the
// normal gap-repair and state-transfer paths (§II re-transmit layer,
// §VIII state transfer).

// BlockRecord is the durable form of one committed decision block: the
// requests and the per-request execution results. Records are
// self-contained so a restarted replica can rebuild both application state
// (by re-executing) and its client reply cache (from the stored results).
type BlockRecord struct {
	Reqs    []Request
	Results [][]byte
}

// EncodeBlockPayload serializes a block record for the BlockStore (shared
// by the SBFT and PBFT engines so both logs recover the same way).
func EncodeBlockPayload(reqs []Request, results [][]byte) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(BlockRecord{Reqs: reqs, Results: results}); err != nil {
		// Requests and results are plain slices and ints; encoding cannot
		// fail for well-formed inputs.
		panic(fmt.Sprintf("core: encoding block record: %v", err))
	}
	return buf.Bytes()
}

// DecodeBlockPayload parses a stored block record (the inverse of the
// encoding used by Replica when appending to its BlockStore).
func DecodeBlockPayload(payload []byte) (BlockRecord, error) {
	var rec BlockRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return BlockRecord{}, fmt.Errorf("core: decoding block record: %w", err)
	}
	return rec, nil
}

// ClientReply is the durable/transferable form of one reply-cache entry.
type ClientReply struct {
	Timestamp uint64
	Seq       uint64
	L         int
	Val       []byte
}

// SnapshotStore is an optional BlockStore extension for durable certified
// snapshots (the encoded CertifiedSnapshot, chunks and π certificate
// included). storage.Ledger satisfies it. A replica whose store supports
// it persists each stable checkpoint's snapshot and can serve verified
// state transfer immediately after a restart.
type SnapshotStore interface {
	SaveSnapshot(seq uint64, data []byte) error
	LoadSnapshot(seq uint64) ([]byte, error)
	LatestSnapshot() (uint64, error)
	PruneSnapshots(keepFrom uint64) error
}

// SnapshotSink is an optional asynchronous persistence hook for stable
// certified snapshots. When installed (SetSnapshotSink), the replica
// hands each adopted snapshot to PersistSnapshot instead of encoding and
// writing it synchronously on the event loop — at large application
// state the encode+write dominates the win/2-interval checkpoint cost
// and would stall execution.
//
// Contract: PersistSnapshot must not block (hand the work to a worker
// goroutine, or schedule it); the snapshot is immutable and safe to read
// off-loop. done(err) reports the outcome and MUST be invoked on the
// replica's event-loop thread (the transport shell routes it through
// Shell.Do; the simulated cluster schedules it on the deterministic
// event loop). In-memory serving arms immediately on adoption; the done
// callback arms the restart-survivable serving point (DurableSnapshotSeq)
// once the bytes are actually on disk. keepFrom is the oldest snapshot
// sequence the replica's retention chain still holds at hand-off: the
// sink prunes durable snapshots BELOW it after a successful write, so
// the on-disk set mirrors the servable in-memory generations instead of
// collapsing to a single newest snapshot.
type SnapshotSink interface {
	PersistSnapshot(cs *CertifiedSnapshot, keepFrom uint64, done func(error))
}

// PersistCertified durably saves a stable certified snapshot into a
// SnapshotStore, pruning generations below keepFrom only after a
// successful write. The single implementation every persistence path
// shares — the synchronous adoptSnapshot fallback, the simulator's
// virtual-disk sink, and the deployment's worker sink — so the
// save→prune ordering (and the retention policy) cannot silently diverge
// between them.
func PersistCertified(ss SnapshotStore, cs *CertifiedSnapshot, keepFrom uint64) error {
	if err := ss.SaveSnapshot(cs.Seq, cs.Encode()); err != nil {
		return err
	}
	return ss.PruneSnapshots(keepFrom)
}

// RecoverableStore is a BlockStore that can be read back on restart.
// storage.Ledger satisfies it.
type RecoverableStore interface {
	BlockStore
	// Get returns the payload appended at seq.
	Get(seq uint64) ([]byte, error)
	// NextSeq reports the sequence number the next Append must carry
	// (one past the highest durable block).
	NextSeq() uint64
}

// NewRecoveredReplica rebuilds a replica from its durable block log: it
// replays every stored block through the application (which must be at
// genesis), verifies the recomputed results against the stored ones, and
// primes the reply cache and execution frontier. The replica then rejoins
// the protocol at its durable frontier; blocks committed by the rest of
// the cluster while it was down arrive through gap repair or state
// transfer.
func NewRecoveredReplica(id int, cfg Config, suite CryptoSuite, keys ReplicaKeys, app Application, env Env, store RecoverableStore) (*Replica, error) {
	r, err := NewReplica(id, cfg, suite, keys, app, env, store)
	if err != nil {
		return nil, err
	}
	frontier := store.NextSeq() - 1
	for seq := uint64(1); seq <= frontier; seq++ {
		payload, err := store.Get(seq)
		if err != nil {
			return nil, fmt.Errorf("core: recovering block %d: %w", seq, err)
		}
		rec, err := DecodeBlockPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("core: recovering block %d: %w", seq, err)
		}
		ops := make([][]byte, len(rec.Reqs))
		for i, req := range rec.Reqs {
			ops[i] = req.Op
		}
		results := app.ExecuteBlock(seq, ops)
		if len(results) != len(rec.Results) {
			return nil, fmt.Errorf("core: block %d replay produced %d results, stored %d", seq, len(results), len(rec.Results))
		}
		for i := range results {
			if !bytes.Equal(results[i], rec.Results[i]) {
				return nil, fmt.Errorf("core: block %d result %d diverged on replay (corrupt store or non-deterministic app)", seq, i)
			}
		}
		for i, req := range rec.Reqs {
			r.replyCache[req.Client] = replyCacheEntry{
				timestamp: req.Timestamp, seq: seq, l: i, val: results[i],
			}
		}
		r.lastExecuted = seq
		r.Metrics.Executions++
	}
	// Every replayed request is executed, so the reply cache alone dedups
	// retries of them; `seen` stays reserved for in-flight requests (it is
	// GC'd against the reply cache at execution for exactly this reason).
	// Anchor the protocol window at the durable frontier: pre-prepares at
	// or below it are stale, and a primary role resumed here must propose
	// above it. The stable checkpoint (lastStable) stays at 0 — stability
	// is a quorum property the restarted replica re-learns from its peers.
	r.windowBase = frontier
	if r.nextSeq <= frontier {
		r.nextSeq = frontier + 1
	}
	// Re-arm snapshot serving from the durable certified snapshot, if one
	// exists at or below the replayed frontier. The stored blob carries its
	// π certificate; verify it (and the chunk shape) before trusting disk.
	if ss, ok := store.(SnapshotStore); ok {
		if seq, err := ss.LatestSnapshot(); err == nil && seq > 0 && seq <= frontier {
			blob, err := ss.LoadSnapshot(seq)
			if err != nil {
				return nil, fmt.Errorf("core: loading snapshot %d: %w", seq, err)
			}
			cs, err := DecodeCertifiedSnapshot(blob)
			if err != nil || cs.Seq != seq {
				return nil, fmt.Errorf("core: durable snapshot %d corrupt: %v", seq, err)
			}
			if suite.Pi.Verify(CheckpointSigDigest(cs.Seq, cs.Root()), cs.Pi) == nil {
				// Re-arm a single-generation retention chain: the durable
				// store held only this snapshot's predecessors-by-prune,
				// and cross-restart delta continuity is not reconstructed
				// (deltaKnown=false). The chain regrows — and deltas with
				// it — from the next stable checkpoint.
				r.snapGens = []*snapGeneration{{cs: cs}}
				r.durableSnap = cs.Seq
			}
		}
	}
	return r, nil
}
