package core

import (
	"bytes"
	"testing"
	"time"

	"sbft/internal/crypto/threshsig"
)

// certifiedAt builds a valid certified snapshot at seq, π-signed by the
// rig's keys, matching fakeApp's genesis digest (Restore is a no-op and
// Digest of the untouched fakeApp is [0]).
func certifiedAt(t *testing.T, rg *rig, seq uint64, table map[int]replyCacheEntry) *CertifiedSnapshot {
	t.Helper()
	cs := NewCertifiedSnapshot(seq, rg.app.Digest(), bytes.Repeat([]byte("snap"), 64), encodeReplyTable(table))
	sd := CheckpointSigDigest(seq, cs.Root())
	var shares []threshsig.Share
	for i := 0; i < rg.cfg.QuorumExec(); i++ {
		sh, err := rg.keys[i].Pi.Sign(sd)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	pi, err := rg.suite.Pi.Combine(sd, shares)
	if err != nil {
		t.Fatal(err)
	}
	cs.Pi = pi
	return cs
}

func metaOf(t *testing.T, cs *CertifiedSnapshot) SnapshotMetaMsg {
	t.Helper()
	hp, err := cs.ProveHeader()
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotMetaMsg{Seq: cs.Seq, Root: cs.Root(), Pi: cs.Pi, Header: cs.Header, HeaderProof: hp}
}

func chunkOf(t *testing.T, cs *CertifiedSnapshot, i int) SnapshotChunkMsg {
	t.Helper()
	p, err := cs.ProveChunk(i)
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotChunkMsg{Seq: cs.Seq, Index: i, Data: cs.Chunks[i-1], Proof: p}
}

// deliverAllChunks feeds every chunk from the given peer.
func deliverAllChunks(t *testing.T, rg *rig, cs *CertifiedSnapshot, from int) {
	t.Helper()
	for i := 1; i <= len(cs.Chunks); i++ {
		rg.r.Deliver(from, chunkOf(t, cs, i))
	}
}

func TestChunkedStateTransferCompletes(t *testing.T) {
	rg := newRig(t, 1, nil)
	table := map[int]replyCacheEntry{
		ClientBase: {timestamp: 7, seq: 3, l: 0, val: []byte("certified")},
	}
	cs := certifiedAt(t, rg, 4, table)

	rg.r.maybeFetchState(4)
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FetchStateMsg); return ok }) == 0 {
		t.Fatal("no FetchState sent")
	}
	rg.r.Deliver(2, metaOf(t, cs))
	if got := rg.sentOfType(func(m Message) bool { _, ok := m.(FetchSnapshotChunkMsg); return ok }); got != len(cs.Chunks) {
		t.Fatalf("requested %d chunks, want %d", got, len(cs.Chunks))
	}
	deliverAllChunks(t, rg, cs, 3)

	if rg.r.LastExecuted() != 4 {
		t.Fatalf("LastExecuted = %d after transfer, want 4", rg.r.LastExecuted())
	}
	if ent, ok := rg.r.replyCache[ClientBase]; !ok || ent.timestamp != 7 || !bytes.Equal(ent.val, []byte("certified")) {
		t.Fatalf("certified reply table not adopted: %+v", rg.r.replyCache)
	}
	if rg.r.SnapshotSeq() != 4 {
		t.Fatalf("recovered replica does not serve the snapshot (SnapshotSeq=%d)", rg.r.SnapshotSeq())
	}
	if rg.r.Metrics.SnapshotBlames != 0 {
		t.Fatalf("honest transfer recorded %d blames", rg.r.Metrics.SnapshotBlames)
	}
}

func TestChunkedStateTransferBlamesTamperedChunk(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs := certifiedAt(t, rg, 4, map[int]replyCacheEntry{
		ClientBase: {timestamp: 1, seq: 1, l: 0, val: []byte("v")},
	})
	rg.r.maybeFetchState(4)
	rg.r.Deliver(2, metaOf(t, cs))

	evil := chunkOf(t, cs, 1)
	evil.Data = append([]byte(nil), evil.Data...)
	evil.Data[0] ^= 0xFF
	before := rg.sentOfType(func(m Message) bool { _, ok := m.(FetchSnapshotChunkMsg); return ok })
	rg.r.Deliver(2, evil)
	if rg.r.Metrics.SnapshotBlames != 1 {
		t.Fatalf("SnapshotBlames = %d after tampered chunk, want 1", rg.r.Metrics.SnapshotBlames)
	}
	if rg.r.SnapshotBlameCounts()[2] != 1 {
		t.Fatalf("blame not attributed to server 2: %v", rg.r.SnapshotBlameCounts())
	}
	after := rg.sentOfType(func(m Message) bool { _, ok := m.(FetchSnapshotChunkMsg); return ok })
	if after != before+1 {
		t.Fatalf("tampered chunk not re-requested (%d → %d requests)", before, after)
	}
	// Honest servers finish the job.
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 4 {
		t.Fatalf("transfer did not complete from honest servers (le=%d)", rg.r.LastExecuted())
	}
}

// TestStateTransferRestartsOnNewerSnapshot: a transfer locked to a
// checkpoint the cluster has advanced past (and garbage-collected) must
// restart at the newer certified snapshot instead of re-requesting dead
// chunks forever.
func TestStateTransferRestartsOnNewerSnapshot(t *testing.T) {
	rg := newRig(t, 1, nil)
	old := certifiedAt(t, rg, 4, map[int]replyCacheEntry{})
	newer := certifiedAt(t, rg, 8, map[int]replyCacheEntry{
		ClientBase: {timestamp: 2, seq: 8, l: 0, val: []byte("new")},
	})

	rg.r.maybeFetchState(4)
	rg.r.Deliver(2, metaOf(t, old))
	// Servers advance: a strictly newer meta arrives mid-transfer.
	rg.r.Deliver(3, metaOf(t, newer))
	// Chunks of the superseded snapshot are ignored...
	deliverAllChunks(t, rg, old, 3)
	if rg.r.LastExecuted() == 4 {
		t.Fatal("superseded transfer completed after restart")
	}
	// ...and the newer one completes.
	deliverAllChunks(t, rg, newer, 4)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("restarted transfer did not complete (le=%d, want 8)", rg.r.LastExecuted())
	}
}

// TestStateFetchDroppedWhenCaughtUp: catching up through other means
// (gap repair) must cancel the in-progress fetch instead of leaving an
// immortal retry timer re-requesting a snapshot the replica no longer
// needs.
func TestStateFetchDroppedWhenCaughtUp(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.ViewChangeTimeout = time.Second })
	rg.r.maybeFetchState(4)
	if rg.r.fetch == nil {
		t.Fatal("no fetch in progress")
	}
	// Simulate catch-up past the target via the normal pipeline.
	rg.r.lastExecuted = 5
	before := len(rg.env.sent)
	rg.env.advance(3 * time.Second) // retry timer fires
	if rg.r.fetch != nil {
		t.Fatal("fetch not dropped after catching up")
	}
	for _, s := range rg.env.sent[before:] {
		if _, ok := s.msg.(FetchStateMsg); ok {
			t.Fatal("caught-up replica still sent FetchState")
		}
	}
}

// TestStateTransferNeverRollsBackExecution: chunks completing AFTER gap
// repair advanced execution past the transfer's snapshot must be
// discarded, not installed — installing would roll back application
// state and the reply table.
func TestStateTransferNeverRollsBackExecution(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs := certifiedAt(t, rg, 4, map[int]replyCacheEntry{
		ClientBase: {timestamp: 1, seq: 1, l: 0, val: []byte("old")},
	})
	rg.r.maybeFetchState(4)
	rg.r.Deliver(2, metaOf(t, cs))
	// Gap repair advances execution past the in-flight snapshot.
	rg.r.lastExecuted = 6
	rg.r.replyCache[ClientBase] = replyCacheEntry{timestamp: 9, seq: 6, l: 0, val: []byte("newer")}
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 6 {
		t.Fatalf("execution rolled back to %d by a stale transfer", rg.r.LastExecuted())
	}
	if ent := rg.r.replyCache[ClientBase]; ent.timestamp != 9 {
		t.Fatalf("reply table rolled back to ts=%d by a stale transfer", ent.timestamp)
	}
	if rg.r.fetch != nil {
		t.Fatal("stale transfer not dropped")
	}
}
