package core

import (
	"bytes"
	"testing"
	"time"

	"sbft/internal/crypto/threshsig"
)

// certifiedSized builds a valid certified snapshot at seq over the given
// app snapshot bytes, π-signed by the rig's keys, matching fakeApp's
// genesis digest (Restore is a no-op and Digest of the untouched fakeApp
// is [0]).
func certifiedSized(t *testing.T, rg *rig, seq uint64, appSnap []byte, table map[int]replyCacheEntry) *CertifiedSnapshot {
	t.Helper()
	cs := NewCertifiedSnapshot(seq, rg.app.Digest(), appSnap, encodeReplyTable(table))
	sd := CheckpointSigDigest(seq, cs.Root())
	var shares []threshsig.Share
	for i := 0; i < rg.cfg.QuorumExec(); i++ {
		sh, err := rg.keys[i].Pi.Sign(sd)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	pi, err := rg.suite.Pi.Combine(sd, shares)
	if err != nil {
		t.Fatal(err)
	}
	cs.Pi = pi
	return cs
}

// certifiedAt is certifiedSized with a small default app snapshot.
func certifiedAt(t *testing.T, rg *rig, seq uint64, table map[int]replyCacheEntry) *CertifiedSnapshot {
	t.Helper()
	return certifiedSized(t, rg, seq, bytes.Repeat([]byte("snap"), 64), table)
}

func metaOf(t *testing.T, cs *CertifiedSnapshot) SnapshotMetaMsg {
	t.Helper()
	hp, err := cs.ProveHeader()
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotMetaMsg{Seq: cs.Seq, Root: cs.Root(), Pi: cs.Pi, Header: cs.Header, HeaderProof: hp}
}

func chunkOf(t *testing.T, cs *CertifiedSnapshot, i int) SnapshotChunkMsg {
	t.Helper()
	p, err := cs.ProveChunk(i)
	if err != nil {
		t.Fatal(err)
	}
	return SnapshotChunkMsg{Seq: cs.Seq, Index: i, Data: cs.Chunks[i-1], Proof: p}
}

// deliverMeta feeds a meta and advances past the meta-collection window
// so the transfer commits to its choice.
func deliverMeta(t *testing.T, rg *rig, cs *CertifiedSnapshot, from int) {
	t.Helper()
	rg.r.Deliver(from, metaOf(t, cs))
	rg.env.advance(rg.cfg.snapshotMetaWait() + time.Millisecond)
}

// deliverAllChunks feeds every chunk from the given peer.
func deliverAllChunks(t *testing.T, rg *rig, cs *CertifiedSnapshot, from int) {
	t.Helper()
	for i := 1; i <= len(cs.Chunks); i++ {
		rg.r.Deliver(from, chunkOf(t, cs, i))
	}
}

// chunkReqCount counts FetchSnapshotChunkMsg sends, optionally filtered
// by snapshot sequence (0 matches all).
func chunkReqCount(rg *rig, seq uint64) int {
	n := 0
	for _, s := range rg.env.sent {
		if m, ok := s.msg.(FetchSnapshotChunkMsg); ok && (seq == 0 || m.Seq == seq) {
			n++
		}
	}
	return n
}

func TestChunkedStateTransferCompletes(t *testing.T) {
	rg := newRig(t, 1, nil)
	table := map[int]replyCacheEntry{
		ClientBase: {timestamp: 7, seq: 3, l: 0, val: []byte("certified")},
	}
	cs := certifiedAt(t, rg, 4, table)

	rg.r.maybeFetchState(4)
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FetchStateMsg); return ok }) == 0 {
		t.Fatal("no FetchState sent")
	}
	deliverMeta(t, rg, cs, 2)
	if got := chunkReqCount(rg, 0); got != len(cs.Chunks) {
		t.Fatalf("requested %d chunks, want %d", got, len(cs.Chunks))
	}
	deliverAllChunks(t, rg, cs, 3)

	if rg.r.LastExecuted() != 4 {
		t.Fatalf("LastExecuted = %d after transfer, want 4", rg.r.LastExecuted())
	}
	if ent, ok := rg.r.replyCache[ClientBase]; !ok || ent.timestamp != 7 || !bytes.Equal(ent.val, []byte("certified")) {
		t.Fatalf("certified reply table not adopted: %+v", rg.r.replyCache)
	}
	if rg.r.SnapshotSeq() != 4 {
		t.Fatalf("recovered replica does not serve the snapshot (SnapshotSeq=%d)", rg.r.SnapshotSeq())
	}
	if rg.r.Metrics.SnapshotBlames != 0 {
		t.Fatalf("honest transfer recorded %d blames", rg.r.Metrics.SnapshotBlames)
	}
}

func TestChunkedStateTransferBlamesTamperedChunk(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs := certifiedAt(t, rg, 4, map[int]replyCacheEntry{
		ClientBase: {timestamp: 1, seq: 1, l: 0, val: []byte("v")},
	})
	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs, 2)

	// Tamper the chunk assigned to server 2 so the failed delivery also
	// exercises the in-flight requeue.
	evilIdx := 0
	for idx, req := range rg.r.fetch.inflight {
		if req.server == 2 {
			evilIdx = idx
			break
		}
	}
	if evilIdx == 0 {
		t.Fatal("no chunk assigned to server 2")
	}
	evil := chunkOf(t, cs, evilIdx)
	evil.Data = append([]byte(nil), evil.Data...)
	evil.Data[0] ^= 0xFF
	before := chunkReqCount(rg, 0)
	rg.r.Deliver(2, evil)
	if rg.r.Metrics.SnapshotBlames != 1 {
		t.Fatalf("SnapshotBlames = %d after tampered chunk, want 1", rg.r.Metrics.SnapshotBlames)
	}
	if rg.r.SnapshotBlameCounts()[2] != 1 {
		t.Fatalf("blame not attributed to server 2: %v", rg.r.SnapshotBlameCounts())
	}
	after := chunkReqCount(rg, 0)
	if after != before+1 {
		t.Fatalf("tampered chunk not re-requested (%d → %d requests)", before, after)
	}
	// Honest servers finish the job.
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 4 {
		t.Fatalf("transfer did not complete from honest servers (le=%d)", rg.r.LastExecuted())
	}
}

// TestTamperedChunkRefetchAvoidsBlamedServer pins the post-blame routing
// fix: the retry for a failed chunk goes through the per-server scheduler
// over the SHRUNK peer set, so it can never land back on the server just
// excluded. (The old code re-derived the peer from the pre-blame
// rotation, `peers[(index+attempt) % len(peers)]` over the new, smaller
// slice — which could re-ask the excluded server or the same one again.)
func TestTamperedChunkRefetchAvoidsBlamedServer(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs := certifiedSized(t, rg, 4, bytes.Repeat([]byte("x"), 64*1024), nil)
	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs, 2)

	// Tamper every chunk assigned to server 2, one by one.
	tampered := 0
	for idx := 1; idx <= len(cs.Chunks); idx++ {
		req, ok := rg.r.fetch.inflight[idx]
		if !ok || req.server != 2 {
			continue
		}
		evil := chunkOf(t, cs, idx)
		evil.Data = append([]byte(nil), evil.Data...)
		evil.Data[0] ^= 0xFF
		mark := len(rg.env.sent)
		rg.r.Deliver(2, evil)
		tampered++
		for _, s := range rg.env.sent[mark:] {
			if m, ok := s.msg.(FetchSnapshotChunkMsg); ok && s.to == 2 {
				t.Fatalf("chunk %d re-requested from the blamed server 2", m.Index)
			}
		}
	}
	if tampered == 0 {
		t.Fatal("scheduler assigned no chunks to server 2")
	}
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 4 {
		t.Fatalf("transfer did not complete (le=%d)", rg.r.LastExecuted())
	}
	for id, n := range rg.r.SnapshotBlameCounts() {
		if id != 2 && n > 0 {
			t.Fatalf("honest server %d blamed %d times", id, n)
		}
	}
}

// TestWindowedFetchRespectsWindowAndRefills: in-flight chunk requests
// never exceed the configured window, and every verified chunk refills
// the window by (at most) one request.
func TestWindowedFetchRespectsWindowAndRefills(t *testing.T) {
	const win = 4
	rg := newRig(t, 1, func(c *Config) { c.FetchWindow = win })
	cs := certifiedSized(t, rg, 4, bytes.Repeat([]byte("y"), 100*1024), nil) // 13 chunks
	if len(cs.Chunks) <= 2*win {
		t.Fatalf("snapshot too small for the test: %d chunks", len(cs.Chunks))
	}

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs, 2)
	if got := chunkReqCount(rg, 0); got != win {
		t.Fatalf("initial requests = %d, want window %d", got, win)
	}
	delivered := 0
	for i := 1; i <= len(cs.Chunks); i++ {
		rg.r.Deliver(3, chunkOf(t, cs, i))
		delivered++
		if f := rg.r.fetch; f != nil {
			if len(f.inflight) > win {
				t.Fatalf("window exceeded after %d deliveries: %d in flight", delivered, len(f.inflight))
			}
		}
		if sent := chunkReqCount(rg, 0); sent > delivered+win {
			t.Fatalf("requests (%d) outran deliveries+window (%d+%d)", sent, delivered, win)
		}
	}
	if rg.r.LastExecuted() != 4 {
		t.Fatalf("windowed transfer did not complete (le=%d)", rg.r.LastExecuted())
	}
	// Nothing was lost, so nothing should have been retried.
	if rg.r.Metrics.SnapshotChunkRetries != 0 {
		t.Fatalf("retries = %d on a lossless transfer", rg.r.Metrics.SnapshotChunkRetries)
	}
}

// TestChunkRetryRecoversDroppedRequest: a lost chunk request (or reply)
// is re-issued by the per-chunk retry timer instead of waiting for the
// whole-transfer restart.
func TestChunkRetryRecoversDroppedRequest(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) {
		c.FetchWindow = 2
		c.ChunkRetryTimeout = 100 * time.Millisecond
		c.ViewChangeTimeout = time.Minute // whole-transfer retry far away
	})
	cs := certifiedSized(t, rg, 4, bytes.Repeat([]byte("z"), 30*1024), nil) // 4+ chunks
	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs, 2)
	before := chunkReqCount(rg, 0)
	if before != 2 {
		t.Fatalf("initial requests = %d, want 2", before)
	}
	// Drop everything: no replies arrive. The pacer must re-issue.
	for i := 0; i < 6; i++ {
		rg.env.advance(60 * time.Millisecond)
	}
	if rg.r.Metrics.SnapshotChunkRetries == 0 {
		t.Fatal("no per-chunk retries after the timeout")
	}
	if after := chunkReqCount(rg, 0); after <= before {
		t.Fatalf("no chunk requests re-issued (%d → %d)", before, after)
	}
	if f := rg.r.fetch; f == nil || len(f.inflight) > 2 {
		t.Fatalf("window exceeded during retries")
	}
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 4 {
		t.Fatalf("transfer did not complete after retries (le=%d)", rg.r.LastExecuted())
	}
}

// TestHighestCertifiedMetaWins is the stale-meta race regression test: a
// Byzantine server racing a STALE-but-valid certified meta at/above the
// requested target must not win the initial choice. The fetcher collects
// competing metas briefly and adopts the highest certified sequence; the
// legacy subtest demonstrates the pre-fix behavior (first accepted meta
// wins) that made the race exploitable.
func TestHighestCertifiedMetaWins(t *testing.T) {
	rg := newRig(t, 1, nil)
	stale := certifiedAt(t, rg, 4, nil)
	newer := certifiedAt(t, rg, 8, map[int]replyCacheEntry{
		ClientBase: {timestamp: 2, seq: 8, l: 0, val: []byte("new")},
	})

	rg.r.maybeFetchState(4)
	// The stale meta arrives FIRST (the Byzantine server wins the race)...
	rg.r.Deliver(2, metaOf(t, stale))
	rg.r.Deliver(3, metaOf(t, newer))
	rg.env.advance(rg.cfg.snapshotMetaWait() + time.Millisecond)
	// ...but the higher certified sequence wins the choice.
	if got := chunkReqCount(rg, stale.Seq); got != 0 {
		t.Fatalf("%d chunk requests for the stale snapshot %d", got, stale.Seq)
	}
	if got := chunkReqCount(rg, newer.Seq); got == 0 {
		t.Fatal("no chunk requests for the highest certified snapshot")
	}
	deliverAllChunks(t, rg, newer, 4)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("transfer completed at le=%d, want 8", rg.r.LastExecuted())
	}

	t.Run("legacy-first-accepted-loses", func(t *testing.T) {
		rg := newRig(t, 1, func(c *Config) { c.SnapshotMetaWait = -1 })
		stale := certifiedAt(t, rg, 4, nil)
		rg.r.maybeFetchState(4)
		rg.r.Deliver(2, metaOf(t, stale))
		// Pre-fix behavior, pinned: the first meta at/above the target is
		// adopted immediately — the race the Byzantine server wins.
		if got := chunkReqCount(rg, stale.Seq); got == 0 {
			t.Fatal("legacy mode did not adopt the first accepted meta")
		}
	})
}

// TestRestartMidWindowResetsAccounting: a transfer restarted by a newer
// certified meta must wipe the old window's in-flight accounting — late
// chunks of the superseded snapshot are ignored and the new window fills
// completely (leaked outstanding counters would under-fill it forever).
func TestRestartMidWindowResetsAccounting(t *testing.T) {
	const win = 4
	rg := newRig(t, 1, func(c *Config) { c.FetchWindow = win })
	old := certifiedSized(t, rg, 4, bytes.Repeat([]byte("o"), 64*1024), nil)
	newer := certifiedSized(t, rg, 8, bytes.Repeat([]byte("n"), 64*1024), nil)

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, old, 2)
	if got := chunkReqCount(rg, old.Seq); got != win {
		t.Fatalf("old window holds %d requests, want %d", got, win)
	}
	// The transfer stalls (no chunks arrive for twice the retry deadline),
	// and a strictly newer meta then restarts it mid-window.
	rg.env.advance(2*rg.cfg.chunkRetryTimeout() + 100*time.Millisecond)
	rg.r.Deliver(3, metaOf(t, newer))
	f := rg.r.fetch
	if f == nil || f.seq != newer.Seq {
		t.Fatalf("transfer did not restart at %d", newer.Seq)
	}
	if got := len(f.inflight); got != win {
		t.Fatalf("restarted window holds %d in-flight, want a full window of %d", got, win)
	}
	if got := chunkReqCount(rg, newer.Seq); got != win {
		t.Fatalf("restarted transfer issued %d requests, want %d", got, win)
	}
	outstanding := 0
	for _, st := range f.servers {
		if st.outstanding < 0 {
			t.Fatalf("negative outstanding count after restart: %+v", f.servers)
		}
		outstanding += st.outstanding
	}
	if outstanding != len(f.inflight) {
		t.Fatalf("per-server outstanding (%d) leaked vs in-flight (%d)", outstanding, len(f.inflight))
	}
	// A late chunk of the superseded snapshot changes nothing.
	rg.r.Deliver(2, chunkOf(t, old, 1))
	if f.missing != len(newer.Chunks) || len(f.inflight) != win {
		t.Fatal("stale chunk of the superseded snapshot perturbed the new window")
	}
	deliverAllChunks(t, rg, newer, 4)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("restarted transfer did not complete (le=%d, want 8)", rg.r.LastExecuted())
	}
}

// TestAdvancingTransferIgnoresNewerMeta: a transfer that is still
// verifying chunks must NOT restart when a newer certified meta shows up
// — restarting throws away everything fetched, and servers retain the
// previous snapshot precisely so in-flight transfers can complete across
// a checkpoint supersession.
func TestAdvancingTransferIgnoresNewerMeta(t *testing.T) {
	rg := newRig(t, 1, nil)
	old := certifiedAt(t, rg, 4, nil)
	newer := certifiedAt(t, rg, 8, nil)

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, old, 2)
	rg.r.Deliver(3, chunkOf(t, old, 1)) // the transfer is advancing
	rg.r.Deliver(3, metaOf(t, newer))
	if f := rg.r.fetch; f == nil || f.seq != old.Seq {
		t.Fatal("advancing transfer was restarted by a newer meta")
	}
	deliverAllChunks(t, rg, old, 4)
	if rg.r.LastExecuted() != old.Seq {
		t.Fatalf("transfer did not complete at %d (le=%d)", old.Seq, rg.r.LastExecuted())
	}
}

// TestServerServesPreviousSnapshotAfterSupersession: bounded retention on
// the serving side (depth 2 here) — chunk requests for retained
// superseded snapshots are still answered; requests beyond the retention
// depth get the current meta re-offered.
func TestServerServesPreviousSnapshotAfterSupersession(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.SnapshotRetain = 2 })
	older := certifiedAt(t, rg, 2, nil)
	mid := certifiedAt(t, rg, 4, nil)
	cur := certifiedAt(t, rg, 8, nil)
	rg.r.adoptSnapshot(older)
	rg.r.adoptSnapshot(mid)
	rg.r.adoptSnapshot(cur)

	before := len(rg.env.sent)
	rg.r.Deliver(2, FetchSnapshotChunkMsg{Replica: 2, Seq: mid.Seq, Index: 1})
	served := false
	for _, s := range rg.env.sent[before:] {
		if m, ok := s.msg.(SnapshotChunkMsg); ok && m.Seq == mid.Seq && s.to == 2 {
			if err := VerifySnapshotChunk(mid.Root(), mid.Header, m.Index, m.Data, m.Proof); err != nil {
				t.Fatalf("previous-snapshot chunk does not verify: %v", err)
			}
			served = true
		}
	}
	if !served {
		t.Fatal("chunk of the retained previous snapshot not served")
	}

	before = len(rg.env.sent)
	rg.r.Deliver(2, FetchSnapshotChunkMsg{Replica: 2, Seq: older.Seq, Index: 1})
	for _, s := range rg.env.sent[before:] {
		if _, ok := s.msg.(SnapshotChunkMsg); ok {
			t.Fatal("chunk served for a snapshot beyond retention")
		}
	}
	reoffered := false
	for _, s := range rg.env.sent[before:] {
		if m, ok := s.msg.(SnapshotMetaMsg); ok && m.Seq == cur.Seq {
			reoffered = true
		}
	}
	if !reoffered {
		t.Fatal("beyond-retention request did not re-offer the current meta")
	}
}

// TestStateTransferRestartsOnNewerSnapshot: a transfer locked to a
// checkpoint the cluster has advanced past (and garbage-collected) must
// restart at the newer certified snapshot instead of re-requesting dead
// chunks forever.
func TestStateTransferRestartsOnNewerSnapshot(t *testing.T) {
	rg := newRig(t, 1, nil)
	old := certifiedAt(t, rg, 4, map[int]replyCacheEntry{})
	newer := certifiedAt(t, rg, 8, map[int]replyCacheEntry{
		ClientBase: {timestamp: 2, seq: 8, l: 0, val: []byte("new")},
	})

	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, old, 2)
	// The transfer stalls, then a strictly newer meta arrives: servers
	// advanced past (and garbage-collected) the snapshot being fetched.
	rg.env.advance(2*rg.cfg.chunkRetryTimeout() + 100*time.Millisecond)
	rg.r.Deliver(3, metaOf(t, newer))
	// Chunks of the superseded snapshot are ignored...
	deliverAllChunks(t, rg, old, 3)
	if rg.r.LastExecuted() == 4 {
		t.Fatal("superseded transfer completed after restart")
	}
	// ...and the newer one completes.
	deliverAllChunks(t, rg, newer, 4)
	if rg.r.LastExecuted() != 8 {
		t.Fatalf("restarted transfer did not complete (le=%d, want 8)", rg.r.LastExecuted())
	}
}

// TestStateFetchDroppedWhenCaughtUp: catching up through other means
// (gap repair) must cancel the in-progress fetch instead of leaving an
// immortal retry timer re-requesting a snapshot the replica no longer
// needs.
func TestStateFetchDroppedWhenCaughtUp(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.ViewChangeTimeout = time.Second })
	rg.r.maybeFetchState(4)
	if rg.r.fetch == nil {
		t.Fatal("no fetch in progress")
	}
	// Simulate catch-up past the target via the normal pipeline.
	rg.r.lastExecuted = 5
	before := len(rg.env.sent)
	rg.env.advance(3 * time.Second) // retry timer fires
	if rg.r.fetch != nil {
		t.Fatal("fetch not dropped after catching up")
	}
	for _, s := range rg.env.sent[before:] {
		if _, ok := s.msg.(FetchStateMsg); ok {
			t.Fatal("caught-up replica still sent FetchState")
		}
	}
}

// TestStateTransferNeverRollsBackExecution: chunks completing AFTER gap
// repair advanced execution past the transfer's snapshot must be
// discarded, not installed — installing would roll back application
// state and the reply table.
func TestStateTransferNeverRollsBackExecution(t *testing.T) {
	rg := newRig(t, 1, nil)
	cs := certifiedAt(t, rg, 4, map[int]replyCacheEntry{
		ClientBase: {timestamp: 1, seq: 1, l: 0, val: []byte("old")},
	})
	rg.r.maybeFetchState(4)
	deliverMeta(t, rg, cs, 2)
	// Gap repair advances execution past the in-flight snapshot.
	rg.r.lastExecuted = 6
	rg.r.replyCache[ClientBase] = replyCacheEntry{timestamp: 9, seq: 6, l: 0, val: []byte("newer")}
	deliverAllChunks(t, rg, cs, 3)
	if rg.r.LastExecuted() != 6 {
		t.Fatalf("execution rolled back to %d by a stale transfer", rg.r.LastExecuted())
	}
	if ent := rg.r.replyCache[ClientBase]; ent.timestamp != 9 {
		t.Fatalf("reply table rolled back to ts=%d by a stale transfer", ent.timestamp)
	}
	if rg.r.fetch != nil {
		t.Fatal("stale transfer not dropped")
	}
}

// recordingSink captures PersistSnapshot hand-offs without persisting.
type recordingSink struct {
	seqs []uint64
	done []func(error)
}

func (s *recordingSink) PersistSnapshot(cs *CertifiedSnapshot, _ uint64, done func(error)) {
	s.seqs = append(s.seqs, cs.Seq)
	s.done = append(s.done, done)
}

// TestAsyncSnapshotSinkArmsDurableOnCompletion: with a SnapshotSink
// installed, adoption arms in-memory serving immediately, the event loop
// never touches the store, and the durable serving point advances only
// when the sink reports completion.
func TestAsyncSnapshotSinkArmsDurableOnCompletion(t *testing.T) {
	rg := newRig(t, 1, nil)
	sink := &recordingSink{}
	rg.r.SetSnapshotSink(sink)

	cs, err := rg.r.buildSnapshot(4, rg.app.Digest())
	if err != nil {
		t.Fatal(err)
	}
	rg.r.adoptSnapshot(cs)
	if rg.r.SnapshotSeq() != 4 {
		t.Fatalf("in-memory serving not armed on adoption (SnapshotSeq=%d)", rg.r.SnapshotSeq())
	}
	if len(sink.seqs) != 1 || sink.seqs[0] != 4 {
		t.Fatalf("sink received %v, want [4]", sink.seqs)
	}
	if rg.r.DurableSnapshotSeq() != 0 {
		t.Fatal("durable serving point armed before the sink completed")
	}
	sink.done[0](nil)
	if rg.r.DurableSnapshotSeq() != 4 {
		t.Fatalf("durable serving point = %d after completion, want 4", rg.r.DurableSnapshotSeq())
	}
	if rg.r.Metrics.SnapshotPersists != 1 {
		t.Fatalf("SnapshotPersists = %d, want 1", rg.r.Metrics.SnapshotPersists)
	}

	// A failed persist must not arm the durable point.
	cs8, err := rg.r.buildSnapshot(8, rg.app.Digest())
	if err != nil {
		t.Fatal(err)
	}
	rg.r.adoptSnapshot(cs8)
	sink.done[1](ErrInvalidProof)
	if rg.r.DurableSnapshotSeq() != 4 {
		t.Fatalf("failed persist advanced the durable point to %d", rg.r.DurableSnapshotSeq())
	}
}
