package core

import (
	"testing"
	"time"
)

// Tests for the §V-C throughput satellites: adaptive-batch block sizing,
// batch-timer re-arming, the requeue client index, seen GC, and
// admission control.

// fillPending stuffs the queue directly through notePending (one request
// per distinct client), without triggering proposals.
func fillPending(rg *rig, n int) {
	for i := 0; i < n; i++ {
		rg.r.notePending(Request{Client: ClientBase + i, Timestamp: 1, Op: []byte("op")})
	}
}

// proposedSizes returns the block size of each distinct proposed
// sequence, in proposal order.
func proposedSizes(rg *rig) []int {
	seen := map[uint64]bool{}
	var sizes []int
	for _, s := range rg.env.sent {
		if pp, ok := s.msg.(PrePrepareMsg); ok && !seen[pp.Seq] {
			seen[pp.Seq] = true
			sizes = append(sizes, len(pp.Reqs))
		}
	}
	return sizes
}

func TestAdaptiveBatchSizing(t *testing.T) {
	// f=2, c=1: n=9, activeWindow = ⌊8/2⌋ = 4, half = 2, Batch = 64.
	// The §V-C heuristic must shape every cut block to pending/half — not
	// just gate the proposal and then cut up to cfg.Batch (the bug this
	// pins): with the bug, the first block of every case would be
	// min(depth, 64).
	cases := []struct {
		name  string
		depth int
		want  []int
	}{
		// Timer-fired proposals may go under-sized: whatever is pending
		// goes out.
		{"single", 1, []int{1}},
		// Partial load: sizes track pending/half and shrink as the queue
		// drains; all strictly below cfg.Batch.
		{"partial", 10, []int{5, 2, 1, 1}},
		// Entering saturation: first block exactly cfg.Batch, then the
		// heuristic backs off with the queue.
		{"saturating", 128, []int{64, 32, 16, 8}},
		// Saturated: max-sized blocks until the window fills.
		{"saturated", 256, []int{64, 64, 64, 32}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rg := newRig(t, 1, func(c *Config) { c.F = 2; c.C = 1 })
			fillPending(rg, tc.depth)
			rg.r.proposeIfReady(true)
			got := proposedSizes(rg)
			if len(got) != len(tc.want) {
				t.Fatalf("proposed %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("proposed %v, want %v", got, tc.want)
				}
			}
			if tc.depth < 128 {
				for _, sz := range got {
					if sz >= rg.cfg.Batch {
						t.Fatalf("partial load proposed a max-sized block: %v", got)
					}
				}
			} else if got[0] != rg.cfg.Batch {
				t.Fatalf("saturated first block = %d, want cfg.Batch = %d", got[0], rg.cfg.Batch)
			}
		})
	}
}

func TestBatchTimerReArmsWhenWindowFull(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.BatchTimeout = 20 * time.Millisecond })
	// n=4, c=0: activeWindow = 3. Fill it with three size-1 blocks.
	for i := 0; i < 3; i++ {
		rg.r.Deliver(ClientBase+i, RequestMsg{Req: Request{Client: ClientBase + i, Timestamp: 1, Op: []byte("op")}})
	}
	if got := len(proposedSizes(rg)); got != 3 {
		t.Fatalf("window fill proposed %d blocks, want 3", got)
	}
	// More arrivals queue up behind the full window; the batch timer must
	// be armed so they cannot starve.
	for i := 3; i < 5; i++ {
		rg.r.Deliver(ClientBase+i, RequestMsg{Req: Request{Client: ClientBase + i, Timestamp: 1, Op: []byte("op")}})
	}
	if got := len(proposedSizes(rg)); got != 3 {
		t.Fatalf("proposed %d blocks through a full window", got)
	}
	if rg.r.batchTimer == nil {
		t.Fatal("no batch timer with pending requests behind a full window")
	}
	// The timer firing into a still-full window must consume the fire and
	// re-arm — every early return of proposeIfReady re-arms (starvation
	// pin).
	rg.env.advance(20 * time.Millisecond)
	if got := len(proposedSizes(rg)); got != 3 {
		t.Fatalf("timer proposed %d blocks through a full window", got)
	}
	if rg.r.batchTimer == nil {
		t.Fatal("batch timer not re-armed after firing into a full window")
	}
	// Commit the three outstanding blocks; the next timer fire must flush
	// the queued requests.
	for seq := uint64(1); seq <= 3; seq++ {
		var reqs []Request
		for _, s := range rg.env.sent {
			if pp, ok := s.msg.(PrePrepareMsg); ok && pp.Seq == seq {
				reqs = pp.Reqs
				break
			}
		}
		h := BlockHash(seq, 0, reqs)
		var shares []threshShare
		for i := 1; i <= rg.cfg.QuorumFast(); i++ {
			sh, err := rg.keys[i-1].Sigma.Sign(h[:])
			if err != nil {
				t.Fatal(err)
			}
			shares = append(shares, sh)
		}
		sigma, err := rg.suite.Sigma.Combine(h[:], shares)
		if err != nil {
			t.Fatal(err)
		}
		rg.r.Deliver(2, FullCommitProofMsg{Seq: seq, View: 0, Sigma: sigma})
	}
	rg.env.advance(20 * time.Millisecond)
	if got := len(proposedSizes(rg)); got != 4 {
		t.Fatalf("queued requests not flushed after the window drained: %d blocks", got)
	}
	if len(rg.r.pending) != 0 {
		t.Fatalf("%d requests still pending", len(rg.r.pending))
	}
}

func TestRequeueSupersession(t *testing.T) {
	rg := newRig(t, 2, nil) // backup: the queue is not drained by proposals
	x, y, z := ClientBase, ClientBase+1, ClientBase+2
	rg.r.notePending(Request{Client: x, Timestamp: 5, Op: []byte("a")})

	// Exact duplicate: skipped.
	rg.r.requeue(Request{Client: x, Timestamp: 5, Op: []byte("a")})
	if len(rg.r.pending) != 1 {
		t.Fatalf("duplicate requeued: %d pending", len(rg.r.pending))
	}
	// Superseded by a queued LATER op of the same client (clients are
	// sequential; the queued ts=5 proves ts=3 completed): skipped.
	rg.r.requeue(Request{Client: x, Timestamp: 3, Op: []byte("old")})
	if len(rg.r.pending) != 1 {
		t.Fatalf("superseded op requeued: %d pending", len(rg.r.pending))
	}
	// A later op of the same client: added.
	rg.r.requeue(Request{Client: x, Timestamp: 7, Op: []byte("b")})
	if len(rg.r.pending) != 2 {
		t.Fatalf("later op not requeued: %d pending", len(rg.r.pending))
	}
	// A DIFFERENT client's queued high timestamp must never count as
	// supersession for this client's op.
	rg.r.requeue(Request{Client: y, Timestamp: 1, Op: []byte("c")})
	if len(rg.r.pending) != 3 {
		t.Fatalf("other client's timestamp blocked a requeue: %d pending", len(rg.r.pending))
	}
	// Already executed (reply cache covers it): skipped.
	rg.r.replyCache[z] = replyCacheEntry{timestamp: 4, seq: 1, l: 0, val: []byte("ok")}
	rg.r.requeue(Request{Client: z, Timestamp: 4, Op: []byte("d")})
	if len(rg.r.pending) != 3 {
		t.Fatalf("executed op requeued: %d pending", len(rg.r.pending))
	}
	rg.r.requeue(Request{Client: z, Timestamp: 5, Op: []byte("e")})
	if len(rg.r.pending) != 4 {
		t.Fatalf("fresh op of executed client not requeued: %d pending", len(rg.r.pending))
	}
}

func TestRequeueDeepQueue(t *testing.T) {
	// Regression: requeue used to scan all of pending per re-added request
	// — O(n²) at view installation. 10k queued + 10k requeued (plus a
	// duplicate pass) finishes instantly with the client index and took
	// whole seconds with the scan.
	rg := newRig(t, 2, nil)
	const depth = 10_000
	fillPending(rg, depth)
	start := time.Now()
	for i := 0; i < depth; i++ {
		rg.r.requeue(Request{Client: ClientBase + depth + i, Timestamp: 1, Op: []byte("op")})
	}
	for i := 0; i < depth; i++ { // duplicates: all index hits, no growth
		rg.r.requeue(Request{Client: ClientBase + depth + i, Timestamp: 1, Op: []byte("op")})
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("requeue of %d requests into a %d-deep queue took %v", depth, depth, elapsed)
	}
	if len(rg.r.pending) != 2*depth {
		t.Fatalf("pending = %d, want %d", len(rg.r.pending), 2*depth)
	}
	if len(rg.r.pendingIdx) != 2*depth {
		t.Fatalf("pendingIdx tracks %d clients, want %d", len(rg.r.pendingIdx), 2*depth)
	}
}

func TestSeenGCAfterExecution(t *testing.T) {
	// `seen` must only hold in-flight clients: once a request executes its
	// reply-cache entry takes over dedup, and the seen entry is dropped —
	// otherwise churning client populations grow the map forever.
	rg := newRig(t, 2, nil)
	req := Request{Client: ClientBase, Timestamp: 1, Op: []byte("x")}
	rg.r.Deliver(ClientBase, RequestMsg{Req: req})
	if _, ok := rg.r.seen[ClientBase]; !ok {
		t.Fatal("in-flight request not tracked in seen")
	}
	reqs := []Request{req}
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})
	h := BlockHash(1, 0, reqs)
	var shares []threshShare
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		sh, err := rg.keys[i-1].Sigma.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sigma, err := rg.suite.Sigma.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	rg.r.Deliver(3, FullCommitProofMsg{Seq: 1, View: 0, Sigma: sigma})
	if rg.r.LastExecuted() != 1 {
		t.Fatalf("LastExecuted = %d", rg.r.LastExecuted())
	}
	if _, ok := rg.r.seen[ClientBase]; ok {
		t.Fatal("seen entry survived execution (unbounded growth under client churn)")
	}
	if _, ok := rg.r.replyCache[ClientBase]; !ok {
		t.Fatal("reply cache does not cover the executed request")
	}
	if len(rg.r.pending) != 0 || len(rg.r.pendingIdx) != 0 {
		t.Fatalf("executed request still queued: pending=%d idx=%d", len(rg.r.pending), len(rg.r.pendingIdx))
	}
}

func TestAdmissionRejectAtPrimary(t *testing.T) {
	rg := newRig(t, 1, func(c *Config) { c.MaxPending = 2 })
	// Fill the window (activeWindow = 3 at n=4) so proposals stop and the
	// queue can actually fill.
	for i := 0; i < 3; i++ {
		rg.r.Deliver(ClientBase+i, RequestMsg{Req: Request{Client: ClientBase + i, Timestamp: 1, Op: []byte("op")}})
	}
	// Two more are admitted into the bounded queue.
	for i := 3; i < 5; i++ {
		rg.r.Deliver(ClientBase+i, RequestMsg{Req: Request{Client: ClientBase + i, Timestamp: 1, Op: []byte("op")}})
	}
	if len(rg.r.pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(rg.r.pending))
	}
	// The sixth client hits the bound: BusyMsg with a positive retry hint,
	// and no replica state retained for the rejected request.
	rejected := ClientBase + 5
	rg.r.Deliver(rejected, RequestMsg{Req: Request{Client: rejected, Timestamp: 1, Op: []byte("op")}})
	var busy *BusyMsg
	for _, s := range rg.env.sent {
		if b, ok := s.msg.(BusyMsg); ok && s.to == rejected {
			busy = &b
		}
	}
	if busy == nil {
		t.Fatal("no BusyMsg sent for a rejected request")
	}
	if busy.Client != rejected || busy.Timestamp != 1 || busy.RetryAfter <= 0 {
		t.Fatalf("bad BusyMsg %+v", busy)
	}
	if rg.r.Metrics.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d", rg.r.Metrics.AdmissionRejects)
	}
	if _, ok := rg.r.seen[rejected]; ok {
		t.Fatal("rejected request leaked into seen")
	}
	// The watch map arms progress timers: a leaked entry for a rejected
	// (dropped) request would fire spurious view changes.
	if _, ok := rg.r.watch[rejected]; ok {
		t.Fatal("rejected request leaked a watch entry")
	}
	if len(rg.r.pending) != 2 {
		t.Fatalf("rejected request queued: pending = %d", len(rg.r.pending))
	}
	// A retry of an ALREADY-ADMITTED request passes the gate and hits the
	// normal dedup paths — no spurious reject.
	rg.r.Deliver(ClientBase+4, RequestMsg{Req: Request{Client: ClientBase + 4, Timestamp: 1, Op: []byte("op")}})
	if rg.r.Metrics.AdmissionRejects != 1 {
		t.Fatalf("admitted request's retry rejected: AdmissionRejects = %d", rg.r.Metrics.AdmissionRejects)
	}
}

func TestAdmissionFullBackupForwards(t *testing.T) {
	// A full backup declines to retain the request but forwards it: the
	// primary runs its own admission and may have room. No BusyMsg — only
	// the primary's queue state should drive client backoff.
	rg := newRig(t, 2, func(c *Config) { c.MaxPending = 1 })
	rg.r.Deliver(ClientBase, RequestMsg{Req: Request{Client: ClientBase, Timestamp: 1, Op: []byte("a")}})
	before := len(rg.env.sent)
	over := ClientBase + 1
	rg.r.Deliver(over, RequestMsg{Req: Request{Client: over, Timestamp: 1, Op: []byte("b")}})
	forwarded := false
	for _, s := range rg.env.sent[before:] {
		if _, ok := s.msg.(BusyMsg); ok {
			t.Fatal("backup sent a BusyMsg")
		}
		if rm, ok := s.msg.(RequestMsg); ok && s.to == 1 && rm.Req.Client == over {
			forwarded = true
		}
	}
	if !forwarded {
		t.Fatal("full backup did not forward the request to the primary")
	}
	if rg.r.Metrics.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d", rg.r.Metrics.AdmissionRejects)
	}
	if len(rg.r.pending) != 1 {
		t.Fatalf("full backup retained the request: pending = %d", len(rg.r.pending))
	}
}

func TestClientBusyBackoff(t *testing.T) {
	c, env, _, _ := newTestClient(t)
	c.RequestTimeout = 100 * time.Millisecond
	if err := c.Submit([]byte("op")); err != nil {
		t.Fatal(err)
	}
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages", len(env.sent))
	}
	// A stale BusyMsg (wrong timestamp) is ignored.
	c.Deliver(1, BusyMsg{Client: c.ID(), Timestamp: 99, RetryAfter: 30 * time.Millisecond})
	if c.Backpressure != 0 {
		t.Fatal("stale BusyMsg counted")
	}
	c.Deliver(1, BusyMsg{Client: c.ID(), Timestamp: 1, RetryAfter: 30 * time.Millisecond})
	if c.Backpressure != 1 {
		t.Fatalf("Backpressure = %d", c.Backpressure)
	}
	// After the hint elapses: one resubmission to the primary alone — the
	// request was dropped, not lost, so no broadcast.
	env.advance(30 * time.Millisecond)
	if len(env.sent) != 2 {
		t.Fatalf("sent %d messages after backoff, want 2", len(env.sent))
	}
	if env.sent[1].to != 1 {
		t.Fatalf("backoff resubmission went to %d, want primary 1", env.sent[1].to)
	}
	rm := env.sent[1].msg.(RequestMsg)
	if rm.Req.Timestamp != 1 || rm.Req.Direct {
		t.Fatalf("bad resubmission %+v", rm)
	}
	// The normal §V-A retry ladder resumes after the resubmission.
	env.advance(100 * time.Millisecond)
	if c.Retries != 1 {
		t.Fatalf("Retries = %d after backoff + timeout", c.Retries)
	}
	if len(env.sent) != 2+4 { // broadcast to all n=4 replicas
		t.Fatalf("sent %d messages after retry", len(env.sent))
	}
}

func TestClientBusyHintClamped(t *testing.T) {
	// A lying primary cannot park a client beyond its request timeout.
	c, env, _, _ := newTestClient(t)
	c.RequestTimeout = 50 * time.Millisecond
	if err := c.Submit([]byte("op")); err != nil {
		t.Fatal(err)
	}
	c.Deliver(1, BusyMsg{Client: c.ID(), Timestamp: 1, RetryAfter: time.Hour})
	env.advance(50 * time.Millisecond)
	if len(env.sent) < 2 {
		t.Fatal("hour-long busy hint parked the client past its request timeout")
	}
}
