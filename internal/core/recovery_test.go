package core

import (
	"bytes"
	"fmt"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// memStore is an in-memory RecoverableStore for unit tests.
type memStore struct {
	blocks  map[uint64][]byte
	nextSeq uint64
}

func newMemStore() *memStore { return &memStore{blocks: make(map[uint64][]byte), nextSeq: 1} }

func (m *memStore) Append(seq uint64, payload []byte) error {
	if seq != m.nextSeq {
		return fmt.Errorf("memStore: out of order append %d, want %d", seq, m.nextSeq)
	}
	m.blocks[seq] = append([]byte(nil), payload...)
	m.nextSeq = seq + 1
	return nil
}

func (m *memStore) Get(seq uint64) ([]byte, error) {
	b, ok := m.blocks[seq]
	if !ok {
		return nil, fmt.Errorf("memStore: no block %d", seq)
	}
	return b, nil
}

func (m *memStore) NextSeq() uint64 { return m.nextSeq }

// countingApp counts executions deterministically and digests the history.
type countingApp struct {
	history []string
}

func (a *countingApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	out := make([][]byte, len(ops))
	for i, op := range ops {
		a.history = append(a.history, fmt.Sprintf("%d:%s", seq, op))
		out[i] = []byte(fmt.Sprintf("r%d-%d", seq, i))
	}
	return out
}
func (a *countingApp) Digest() []byte {
	d := []byte(fmt.Sprintf("%d", len(a.history)))
	for _, h := range a.history {
		d = append(d, h...)
	}
	return d
}
func (a *countingApp) ProveOperation(uint64, int) ([]byte, error) { return []byte("p"), nil }
func (a *countingApp) Snapshot() ([]byte, error)                  { return []byte("s"), nil }
func (a *countingApp) Restore([]byte) error                       { return nil }
func (a *countingApp) GarbageCollect(uint64)                      {}

func commitBlock(t *testing.T, rg *rig, seq uint64, reqs []Request) {
	t.Helper()
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	h := BlockHash(seq, 0, reqs)
	var shares []threshsig.Share
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		sh, err := rg.keys[i-1].Sigma.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sigma, err := rg.suite.Sigma.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	rg.r.Deliver(3, FullCommitProofMsg{Seq: seq, View: 0, Sigma: sigma})
}

func TestBlockPayloadRoundTrip(t *testing.T) {
	reqs := []Request{
		{Client: ClientBase, Timestamp: 3, Op: []byte("put k v")},
		{Client: ClientBase + 1, Timestamp: 9, Op: []byte("get k"), Direct: true},
	}
	results := [][]byte{[]byte("ok"), []byte("v")}
	rec, err := DecodeBlockPayload(EncodeBlockPayload(reqs, results))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Reqs) != 2 || len(rec.Results) != 2 {
		t.Fatalf("round trip lost data: %+v", rec)
	}
	if rec.Reqs[1].Client != ClientBase+1 || !rec.Reqs[1].Direct || !bytes.Equal(rec.Results[1], []byte("v")) {
		t.Fatalf("round trip corrupted fields: %+v", rec)
	}
	if _, err := DecodeBlockPayload([]byte("garbage")); err == nil {
		t.Fatal("garbage payload decoded")
	}
}

func TestRecoveredReplicaReplaysLog(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	cfg.BatchTimeout = 0
	cfg.CollectorStagger = 0
	suite, keys, err := InsecureSuite(cfg, "recovery-test")
	if err != nil {
		t.Fatal(err)
	}
	store := newMemStore()
	before := &countingApp{}
	env := &fakeEnv{}
	r, err := NewReplica(2, cfg, suite, keys[1], before, env, store)
	if err != nil {
		t.Fatal(err)
	}
	rg := &rig{t: t, cfg: cfg, suite: suite, keys: keys, env: env, r: r}

	// Commit and execute three blocks so the store holds durable records.
	for seq := uint64(1); seq <= 3; seq++ {
		reqs := []Request{{Client: ClientBase + int(seq), Timestamp: seq, Op: []byte(fmt.Sprintf("op%d", seq))}}
		commitBlock(t, rg, seq, reqs)
	}
	if r.LastExecuted() != 3 {
		t.Fatalf("pre-crash frontier = %d, want 3", r.LastExecuted())
	}
	preDigest := before.Digest()

	// "Restart": fresh app + replica rebuilt from the store.
	after := &countingApp{}
	r2, err := NewRecoveredReplica(2, cfg, suite, keys[1], after, &fakeEnv{}, store)
	if err != nil {
		t.Fatal(err)
	}
	if r2.LastExecuted() != 3 {
		t.Fatalf("recovered frontier = %d, want 3", r2.LastExecuted())
	}
	if !bytes.Equal(after.Digest(), preDigest) {
		t.Fatal("replayed application state differs from pre-crash state")
	}
	// The reply cache must serve pre-crash requests.
	ent, ok := r2.replyCache[ClientBase+2]
	if !ok || ent.seq != 2 || !bytes.Equal(ent.val, []byte("r2-0")) {
		t.Fatalf("reply cache not rebuilt: %+v", ent)
	}
	// The recovered replica keeps committing: replay the next block.
	rg2 := &rig{t: t, cfg: cfg, suite: suite, keys: keys, env: &fakeEnv{}, r: r2}
	commitBlock(t, rg2, 4, []Request{{Client: ClientBase + 9, Timestamp: 1, Op: []byte("op4")}})
	if r2.LastExecuted() != 4 {
		t.Fatalf("recovered replica stuck at %d after new commit", r2.LastExecuted())
	}
	if store.NextSeq() != 5 {
		t.Fatalf("store frontier = %d, want 5 (block 4 appended post-restart)", store.NextSeq())
	}
}

func TestRecoveredReplicaDetectsDivergentReplay(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "recovery-test")
	if err != nil {
		t.Fatal(err)
	}
	store := newMemStore()
	// Store a record whose results cannot come from countingApp.
	payload := EncodeBlockPayload(
		[]Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}},
		[][]byte{[]byte("not-what-replay-produces")},
	)
	if err := store.Append(1, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecoveredReplica(2, cfg, suite, keys[1], &countingApp{}, &fakeEnv{}, store); err == nil {
		t.Fatal("divergent replay accepted")
	}
}
