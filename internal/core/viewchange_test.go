package core

import (
	"testing"

	"sbft/internal/crypto/threshsig"
)

// Unit tests for the §V-G safe-value computation, built on real threshold
// certificates from the insecure suite. cfg: f=1, c=0, n=4 — fast quorum
// 4, slow quorum 3, f+c+1 = 2.

type vcFixture struct {
	cfg   Config
	suite CryptoSuite
	keys  []ReplicaKeys
}

func newVCFixture(t *testing.T) *vcFixture {
	t.Helper()
	cfg := DefaultConfig(1, 0)
	suite, keys, err := InsecureSuite(cfg, "vc-test")
	if err != nil {
		t.Fatal(err)
	}
	return &vcFixture{cfg: cfg, suite: suite, keys: keys}
}

func (f *vcFixture) reqs(tag string) []Request {
	return []Request{{Client: ClientBase, Timestamp: 1, Op: []byte(tag)}}
}

func (f *vcFixture) prepareCert(t *testing.T, seq, view uint64, reqs []Request) threshsig.Signature {
	t.Helper()
	h := BlockHash(seq, view, reqs)
	var shares []threshsig.Share
	for i := 0; i < f.cfg.QuorumSlow(); i++ {
		sh, err := f.keys[i].Tau.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := f.suite.Tau.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func (f *vcFixture) slowCert(t *testing.T, inner threshsig.Signature) threshsig.Signature {
	t.Helper()
	d := tauTauDigest(inner)
	var shares []threshsig.Share
	for i := 0; i < f.cfg.QuorumSlow(); i++ {
		sh, err := f.keys[i].Tau.Sign(d)
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := f.suite.Tau.Combine(d, shares)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func (f *vcFixture) fastCert(t *testing.T, seq, view uint64, reqs []Request) threshsig.Signature {
	t.Helper()
	h := BlockHash(seq, view, reqs)
	var shares []threshsig.Share
	for i := 0; i < f.cfg.QuorumFast(); i++ {
		sh, err := f.keys[i].Sigma.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sig, err := f.suite.Sigma.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func (f *vcFixture) sigmaShare(t *testing.T, replica int, seq, view uint64, reqs []Request) threshsig.Share {
	t.Helper()
	h := BlockHash(seq, view, reqs)
	sh, err := f.keys[replica-1].Sigma.Sign(h[:])
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// vcMsg builds a bare view-change message from replica id with slots.
func vcMsg(id int, slots ...SlotInfo) ViewChangeMsg {
	return ViewChangeMsg{NewView: 1, Replica: id, Slots: slots}
}

func decide(f *vcFixture, vcs ...ViewChangeMsg) []slotDecision {
	_, decisions := computeSafeValues(f.cfg, f.suite, 1, vcs)
	return decisions
}

func TestSafeValueNoEvidence(t *testing.T) {
	f := newVCFixture(t)
	decisions := decide(f, vcMsg(1), vcMsg(2), vcMsg(3))
	if len(decisions) != 0 {
		t.Fatalf("decisions for empty slots: %d", len(decisions))
	}
}

func TestSafeValueDecidedSlow(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("A")
	inner := f.prepareCert(t, 1, 0, reqs)
	outer := f.slowCert(t, inner)
	d := decide(f, vcMsg(1, SlotInfo{
		Seq: 1, HasCommitProofSlow: true, Tau: inner, TauTau: outer,
		SlowView: 0, SlowReqs: reqs,
	}), vcMsg(2), vcMsg(3))
	if len(d) != 1 || !d[0].decided || string(d[0].reqs[0].Op) != "A" {
		t.Fatalf("decision = %+v", d)
	}
}

func TestSafeValueDecidedFast(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("B")
	sig := f.fastCert(t, 3, 2, reqs)
	d := decide(f, vcMsg(1, SlotInfo{
		Seq: 3, HasCommitProof: true, Sigma: sig, FastView: 2, FastReqs: reqs,
	}), vcMsg(2), vcMsg(3))
	if len(d) != 3 {
		t.Fatalf("want decisions for slots 1..3, got %d", len(d))
	}
	if !d[2].decided || string(d[2].reqs[0].Op) != "B" {
		t.Fatalf("slot 3 = %+v", d[2])
	}
	// Slots 1 and 2 have no evidence → null blocks.
	if d[0].decided || len(d[0].reqs) != 0 {
		t.Fatalf("slot 1 should be null, got %+v", d[0])
	}
}

func TestSafeValueAdoptsPrepare(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("C")
	tau := f.prepareCert(t, 1, 0, reqs)
	d := decide(f, vcMsg(1, SlotInfo{
		Seq: 1, HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: reqs,
	}), vcMsg(2), vcMsg(3))
	if len(d) != 1 || d[0].decided {
		t.Fatalf("decision = %+v", d)
	}
	if string(d[0].reqs[0].Op) != "C" {
		t.Fatalf("adopted %q, want C", d[0].reqs[0].Op)
	}
}

func TestSafeValueAdoptsFastValue(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("D")
	// f+c+1 = 2 σ shares over the same block → fast value.
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 1, 1, 0, reqs), PrePrepareView: 0, PrePrepareReqs: reqs}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 2, 1, 0, reqs), PrePrepareView: 0, PrePrepareReqs: reqs}),
		vcMsg(3),
	)
	if len(d) != 1 || d[0].decided {
		t.Fatalf("decision = %+v", d)
	}
	if len(d[0].reqs) == 0 || string(d[0].reqs[0].Op) != "D" {
		t.Fatalf("adopted %+v, want D", d[0].reqs)
	}
}

func TestSafeValueSingleShareIsNotFast(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("E")
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 1, 1, 0, reqs), PrePrepareView: 0, PrePrepareReqs: reqs}),
		vcMsg(2), vcMsg(3),
	)
	if len(d) != 1 || len(d[0].reqs) != 0 {
		t.Fatalf("one share adopted a fast value: %+v", d)
	}
}

func TestSafeValuePrefersSlowOnTie(t *testing.T) {
	f := newVCFixture(t)
	// Prepare for A at view 1; two σ shares for B also at view 1. The
	// paper's rule: v* ≥ v̂ ⇒ the slow-path value wins (§V-G, §VI proof
	// "prefers the slow path proof over the fast path proof").
	reqsA, reqsB := f.reqs("A"), f.reqs("B")
	tau := f.prepareCert(t, 1, 1, reqsA)
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1,
			HasPrepare: true, PrepareTau: tau, PrepareView: 1, PrepareReqs: reqsA,
			HasPrePrepare: true, SigmaShare: f.sigmaShare(t, 1, 1, 1, reqsB),
			PrePrepareView: 1, PrePrepareReqs: reqsB}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 2, 1, 1, reqsB), PrePrepareView: 1, PrePrepareReqs: reqsB}),
		vcMsg(3),
	)
	if string(d[0].reqs[0].Op) != "A" {
		t.Fatalf("tie broken toward fast value %q; slow must win", d[0].reqs[0].Op)
	}
}

func TestSafeValueFastBeatsLowerPrepare(t *testing.T) {
	f := newVCFixture(t)
	reqsA, reqsB := f.reqs("A"), f.reqs("B")
	// Prepare for A at view 0; fast value B at view 2 ⇒ B wins (v̂ > v*).
	tau := f.prepareCert(t, 1, 0, reqsA)
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1,
			HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: reqsA,
			HasPrePrepare: true, SigmaShare: f.sigmaShare(t, 1, 1, 2, reqsB),
			PrePrepareView: 2, PrePrepareReqs: reqsB}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 2, 1, 2, reqsB), PrePrepareView: 2, PrePrepareReqs: reqsB}),
		vcMsg(3),
	)
	if string(d[0].reqs[0].Op) != "B" {
		t.Fatalf("adopted %q, want the higher-view fast value B", d[0].reqs[0].Op)
	}
}

func TestSafeValueAmbiguousFastIsDropped(t *testing.T) {
	f := newVCFixture(t)
	reqsA, reqsB := f.reqs("A"), f.reqs("B")
	// Two distinct values each with f+c+1 shares at the same view: not a
	// unique fast value ⇒ v̂ = −1 ⇒ null (no prepare present).
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 1, 1, 1, reqsA), PrePrepareView: 1, PrePrepareReqs: reqsA}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 2, 1, 1, reqsA), PrePrepareView: 1, PrePrepareReqs: reqsA}),
		vcMsg(3, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 3, 1, 1, reqsB), PrePrepareView: 1, PrePrepareReqs: reqsB}),
		vcMsg(4, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: f.sigmaShare(t, 4, 1, 1, reqsB), PrePrepareView: 1, PrePrepareReqs: reqsB}),
	)
	if len(d[0].reqs) != 0 {
		t.Fatalf("ambiguous fast value adopted: %+v", d[0].reqs)
	}
}

func TestSafeValueIgnoresForgedCertificates(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("EVIL")
	good := f.reqs("GOOD")
	tau := f.prepareCert(t, 1, 0, good)
	forged := threshsig.Signature{Data: []byte("not a real signature")}
	d := decide(f,
		// Byzantine replica claims a slow commit and a fast commit with
		// forged certificates.
		vcMsg(1, SlotInfo{Seq: 1,
			HasCommitProofSlow: true, Tau: forged, TauTau: forged, SlowView: 5, SlowReqs: reqs,
			HasCommitProof: true, Sigma: forged, FastView: 5, FastReqs: reqs}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: good}),
		vcMsg(3),
	)
	if d[0].decided {
		t.Fatal("forged certificate decided a slot")
	}
	if string(d[0].reqs[0].Op) != "GOOD" {
		t.Fatalf("adopted %q, want GOOD", d[0].reqs[0].Op)
	}
}

func TestSafeValueIgnoresSpoofedShareOwner(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("S")
	// Replica 2 replays replica 1's σ share; the share's signer id does
	// not match the sender, so it must not count toward f+c+1.
	share1 := f.sigmaShare(t, 1, 1, 0, reqs)
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: share1, PrePrepareView: 0, PrePrepareReqs: reqs}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrePrepare: true,
			SigmaShare: share1, PrePrepareView: 0, PrePrepareReqs: reqs}),
		vcMsg(3),
	)
	if len(d[0].reqs) != 0 {
		t.Fatalf("spoofed share counted toward a fast value: %+v", d[0].reqs)
	}
}

func TestSafeValueHigherPrepareWins(t *testing.T) {
	f := newVCFixture(t)
	reqsA, reqsB := f.reqs("A"), f.reqs("B")
	tauLow := f.prepareCert(t, 1, 0, reqsA)
	tauHigh := f.prepareCert(t, 1, 3, reqsB)
	d := decide(f,
		vcMsg(1, SlotInfo{Seq: 1, HasPrepare: true, PrepareTau: tauLow, PrepareView: 0, PrepareReqs: reqsA}),
		vcMsg(2, SlotInfo{Seq: 1, HasPrepare: true, PrepareTau: tauHigh, PrepareView: 3, PrepareReqs: reqsB}),
		vcMsg(3),
	)
	if string(d[0].reqs[0].Op) != "B" {
		t.Fatalf("adopted %q, want highest-view prepare B", d[0].reqs[0].Op)
	}
}

func TestSafeValueStableBoundsSlots(t *testing.T) {
	f := newVCFixture(t)
	reqs := f.reqs("X")
	tau := f.prepareCert(t, 2, 0, reqs)
	vc1 := vcMsg(1, SlotInfo{Seq: 2, HasPrepare: true, PrepareTau: tau, PrepareView: 0, PrepareReqs: reqs})
	vc1.LastStable = 2 // slot 2 is below the stable point
	vc2 := vcMsg(2)
	vc3 := vcMsg(3)
	ls, d := computeSafeValues(f.cfg, f.suite, 1, []ViewChangeMsg{vc1, vc2, vc3})
	if ls != 2 {
		t.Fatalf("ls = %d, want 2", ls)
	}
	if len(d) != 0 {
		t.Fatalf("decisions below stable point: %+v", d)
	}
}
