package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// Idempotence and reordering tests: the system model (§II) allows the
// network to duplicate and reorder messages arbitrarily; every protocol
// handler must tolerate redelivery and out-of-order arrival without
// double-executing, double-broadcasting, or losing liveness.

// collectorSeqFor finds an early sequence whose C-collector list contains
// the replica, so collector-side handlers can be exercised.
func collectorSeqFor(cfg Config, replica int, view uint64) uint64 {
	for s := uint64(1); s < 256; s++ {
		for _, c := range cfg.CCollectors(s, view) {
			if c == replica {
				return s
			}
		}
	}
	return 0
}

// TestDuplicateFastPathDelivery redelivers every fast-path message twice:
// one execution, one sign-share per collector, one proof broadcast.
func TestDuplicateFastPathDelivery(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	seq := collectorSeqFor(cfg, 2, 0)
	if seq == 0 {
		t.Skip("replica 2 never a collector early")
	}
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}

	pp := PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs}
	rg.r.Deliver(1, pp)
	rg.r.Deliver(1, pp) // duplicate
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		if i == 2 {
			continue
		}
		ss := rg.signShare(i, seq, 0, reqs, true)
		rg.r.Deliver(i, ss)
		rg.r.Deliver(i, ss) // duplicate
	}
	proofs := rg.sentOfType(func(m Message) bool {
		p, ok := m.(FullCommitProofMsg)
		return ok && p.Seq == seq
	})
	// Exactly one broadcast: n-1 copies, not 2(n-1).
	if proofs != rg.cfg.N()-1 {
		t.Fatalf("full-commit-proof copies = %d, want %d", proofs, rg.cfg.N()-1)
	}
	shares := rg.sentOfType(func(m Message) bool {
		s, ok := m.(SignShareMsg)
		return ok && s.Seq == seq
	})
	want := 0
	seen := map[int]bool{}
	for _, c := range rg.cfg.CCollectors(seq, 0) {
		if !seen[c] && c != 2 {
			want++
		}
		seen[c] = true
	}
	if shares != want {
		t.Fatalf("sign-share sends = %d, want %d (no duplicates)", shares, want)
	}

	// Redeliver the full proof itself twice: executes at most once.
	h := BlockHash(seq, 0, reqs)
	var sigShares []threshsig.Share
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		sh, _ := rg.keys[i-1].Sigma.Sign(h[:])
		sigShares = append(sigShares, sh)
	}
	sigma, _ := rg.suite.Sigma.Combine(h[:], sigShares)
	fcp := FullCommitProofMsg{Seq: seq, View: 0, Sigma: sigma}
	rg.r.Deliver(3, fcp)
	rg.r.Deliver(3, fcp)
	if rg.r.Metrics.FastCommits != 1 {
		t.Fatalf("FastCommits = %d after duplicate proofs, want 1", rg.r.Metrics.FastCommits)
	}
	if seq == 1 && rg.app.blocks != 1 {
		t.Fatalf("executed %d blocks, want 1", rg.app.blocks)
	}
}

// TestSlowPathDuplicateAndReorderedCommits drives the slow path with
// commit shares arriving before the prepare and every message delivered
// twice: exactly one slow proof, one commit.
func TestSlowPathDuplicateAndReorderedCommits(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	cfg.FastPath = false
	seq := collectorSeqFor(cfg, 2, 0)
	if seq == 0 {
		t.Skip("replica 2 never a collector early")
	}
	rg := newRig(t, 2, func(c *Config) { c.FastPath = false })
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("y")}}
	h := BlockHash(seq, 0, reqs)

	// Assemble the prepare certificate τ(h).
	var tauShares []threshsig.Share
	for i := 1; i <= rg.cfg.QuorumSlow(); i++ {
		sh, err := rg.keys[i-1].Tau.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		tauShares = append(tauShares, sh)
	}
	tau, err := rg.suite.Tau.Combine(h[:], tauShares)
	if err != nil {
		t.Fatal(err)
	}
	commitShare := func(i int) CommitMsg {
		sh, err := rg.keys[i-1].Tau.Sign(tauTauDigest(tau))
		if err != nil {
			t.Fatal(err)
		}
		return CommitMsg{Seq: seq, View: 0, Replica: i, TauTau: sh}
	}

	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	// Commit shares arrive BEFORE any prepare (reordering): must not be
	// counted against a nonexistent certificate, must not panic.
	rg.r.Deliver(3, commitShare(3))
	prep := PrepareMsg{Seq: seq, View: 0, Tau: tau}
	rg.r.Deliver(3, prep)
	rg.r.Deliver(3, prep) // duplicate
	// Now the commit quorum, every share twice (own share came from
	// onPrepare already).
	for i := 1; i <= rg.cfg.QuorumSlow(); i++ {
		if i == 2 {
			continue
		}
		cs := commitShare(i)
		rg.r.Deliver(i, cs)
		rg.r.Deliver(i, cs)
	}
	slow := rg.sentOfType(func(m Message) bool {
		p, ok := m.(FullCommitProofSlowMsg)
		return ok && p.Seq == seq
	})
	if slow != rg.cfg.N()-1 {
		t.Fatalf("slow proof copies = %d, want %d (single broadcast)", slow, rg.cfg.N()-1)
	}
	if rg.r.Metrics.SlowCommits != 1 {
		t.Fatalf("SlowCommits = %d, want 1", rg.r.Metrics.SlowCommits)
	}
}

// TestSignShareArrivalOrderIrrelevant permutes sign-share arrival orders
// across seeds (including before the pre-prepare): the collector must
// reach the fast proof every time.
func TestSignShareArrivalOrderIrrelevant(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	seq := collectorSeqFor(cfg, 2, 0)
	if seq == 0 {
		t.Skip("replica 2 never a collector early")
	}
	for trial := 0; trial < 8; trial++ {
		rg := newRig(t, 2, nil)
		reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("z")}}
		type ev struct {
			from int
			msg  any
		}
		events := []ev{{1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs}}}
		for i := 1; i <= rg.cfg.QuorumFast(); i++ {
			if i == 2 {
				continue
			}
			events = append(events, ev{i, rg.signShare(i, seq, 0, reqs, true)})
		}
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(events), func(a, b int) { events[a], events[b] = events[b], events[a] })
		for _, e := range events {
			rg.r.Deliver(e.from, e.msg)
		}
		got := rg.sentOfType(func(m Message) bool {
			p, ok := m.(FullCommitProofMsg)
			return ok && p.Seq == seq
		})
		if got == 0 {
			order := make([]string, len(events))
			for i, e := range events {
				order[i] = fmt.Sprintf("%T", e.msg)
			}
			t.Fatalf("trial %d: no fast proof for order %v", trial, order)
		}
	}
}

// TestDuplicateCheckpointShares advances the stable point exactly once.
func TestDuplicateCheckpointShares(t *testing.T) {
	rg := newRig(t, 2, func(c *Config) { c.CheckpointInterval = 1; c.Win = 8 })
	d := []byte("ckpt")
	sd := CheckpointSigDigest(4, d)
	for round := 0; round < 2; round++ {
		for i := 1; i <= rg.cfg.QuorumExec(); i++ {
			sh, err := rg.keys[i-1].Pi.Sign(sd)
			if err != nil {
				t.Fatal(err)
			}
			rg.r.Deliver(i, CheckpointShareMsg{Seq: 4, Replica: i, Digest: d, PiSig: sh})
		}
	}
	if rg.r.LastStable() != 4 {
		t.Fatalf("LastStable = %d, want 4", rg.r.LastStable())
	}
	if rg.r.Metrics.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d after redelivery, want 1", rg.r.Metrics.Checkpoints)
	}
}

// TestExactlyOnceExecutionAcrossSequences commits the same request at two
// sequence numbers (as a Byzantine primary could): the application must
// see it once, and the second block executes as empty.
func TestExactlyOnceExecutionAcrossSequences(t *testing.T) {
	rg := newRig(t, 2, nil)
	req := Request{Client: ClientBase, Timestamp: 1, Op: []byte("once")}
	for _, seq := range []uint64{1, 2} {
		reqs := []Request{req}
		rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
		h := BlockHash(seq, 0, reqs)
		var shares []threshsig.Share
		for i := 1; i <= rg.cfg.QuorumFast(); i++ {
			sh, _ := rg.keys[i-1].Sigma.Sign(h[:])
			shares = append(shares, sh)
		}
		sigma, _ := rg.suite.Sigma.Combine(h[:], shares)
		rg.r.Deliver(3, FullCommitProofMsg{Seq: seq, View: 0, Sigma: sigma})
	}
	if rg.r.LastExecuted() != 2 {
		t.Fatalf("LastExecuted = %d, want 2", rg.r.LastExecuted())
	}
	if rg.app.ops != 1 {
		t.Fatalf("application saw %d ops, want 1 (exactly-once)", rg.app.ops)
	}
	if rg.r.Metrics.DedupSkips != 1 {
		t.Fatalf("DedupSkips = %d, want 1", rg.r.Metrics.DedupSkips)
	}
}

// TestSnapshotCarriesReplyCache pins the certified state-transfer payload:
// the last-reply table must round-trip through its canonical encoding so
// dedup stays deterministic, and the encoding itself must be canonical
// (client-sorted) because it is committed inside the checkpoint digest.
func TestSnapshotCarriesReplyCache(t *testing.T) {
	cache := map[int]replyCacheEntry{
		ClientBase:     {timestamp: 3, seq: 7, l: 0, val: []byte("a")},
		ClientBase + 1: {timestamp: 9, seq: 8, l: 1, val: []byte("b")},
	}
	table, err := decodeReplyTable(encodeReplyTable(cache))
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 || table[ClientBase+1].timestamp != 9 || !bytes.Equal(table[ClientBase].val, []byte("a")) {
		t.Fatalf("reply table corrupted: %+v", table)
	}
	if !bytes.Equal(encodeReplyTable(cache), encodeReplyTable(table)) {
		t.Fatal("reply-table encoding is not canonical")
	}
	if _, err := decodeReplyTable([]byte("junk")); err == nil {
		t.Fatal("junk reply table decoded")
	}
}
