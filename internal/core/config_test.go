package core

import (
	"testing"
	"testing/quick"
)

func TestConfigQuorums(t *testing.T) {
	tests := []struct {
		f, c                    int
		n, fast, slow, exec, vc int
	}{
		{1, 0, 4, 4, 3, 2, 3},
		{1, 1, 6, 5, 4, 2, 5},
		{2, 0, 7, 7, 5, 3, 5},
		{64, 0, 193, 193, 129, 65, 129},
		{64, 8, 209, 201, 137, 65, 145},
	}
	for _, tt := range tests {
		cfg := DefaultConfig(tt.f, tt.c)
		if got := cfg.N(); got != tt.n {
			t.Errorf("f=%d c=%d: N=%d, want %d", tt.f, tt.c, got, tt.n)
		}
		if got := cfg.QuorumFast(); got != tt.fast {
			t.Errorf("f=%d c=%d: QuorumFast=%d, want %d", tt.f, tt.c, got, tt.fast)
		}
		if got := cfg.QuorumSlow(); got != tt.slow {
			t.Errorf("f=%d c=%d: QuorumSlow=%d, want %d", tt.f, tt.c, got, tt.slow)
		}
		if got := cfg.QuorumExec(); got != tt.exec {
			t.Errorf("f=%d c=%d: QuorumExec=%d, want %d", tt.f, tt.c, got, tt.exec)
		}
		if got := cfg.QuorumViewChange(); got != tt.vc {
			t.Errorf("f=%d c=%d: QuorumViewChange=%d, want %d", tt.f, tt.c, got, tt.vc)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.F = 0
	if err := bad.Validate(); err == nil {
		t.Error("F=0 accepted")
	}
	bad = good
	bad.C = -1
	if err := bad.Validate(); err == nil {
		t.Error("C=-1 accepted")
	}
	bad = good
	bad.Win = 2
	if err := bad.Validate(); err == nil {
		t.Error("Win=2 accepted")
	}
	bad = good
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Error("Batch=0 accepted")
	}
}

func TestPrimaryRotation(t *testing.T) {
	cfg := DefaultConfig(1, 0) // n = 4
	seen := make(map[int]bool)
	for v := uint64(0); v < 8; v++ {
		p := cfg.Primary(v)
		if p < 1 || p > 4 {
			t.Fatalf("Primary(%d) = %d out of range", v, p)
		}
		seen[p] = true
		if cfg.Primary(v+4) != p {
			t.Fatalf("rotation period wrong at view %d", v)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("round-robin covered %d of 4 replicas", len(seen))
	}
}

func TestCollectorSelection(t *testing.T) {
	cfg := DefaultConfig(2, 2) // n = 11, c+1 = 3 collectors
	for seq := uint64(1); seq <= 50; seq++ {
		cc := cfg.CCollectors(seq, 3)
		if len(cc) != cfg.C+2 { // c+1 plus the primary fallback
			t.Fatalf("CCollectors len = %d, want %d", len(cc), cfg.C+2)
		}
		primary := cfg.Primary(3)
		if cc[len(cc)-1] != primary {
			t.Fatal("primary is not the last staggered collector")
		}
		seen := make(map[int]bool)
		for i, id := range cc {
			if id < 1 || id > cfg.N() {
				t.Fatalf("collector %d out of range", id)
			}
			if i < len(cc)-1 && id == primary {
				t.Fatal("primary selected as a pseudo-random collector")
			}
			if seen[id] {
				t.Fatalf("duplicate collector %d at seq %d", id, seq)
			}
			seen[id] = true
		}
		ec := cfg.ECollectors(seq, 3)
		if len(ec) != cfg.C+1 {
			t.Fatalf("ECollectors len = %d, want %d", len(ec), cfg.C+1)
		}
	}
}

func TestCollectorSelectionDeterministic(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	for seq := uint64(1); seq < 20; seq++ {
		a := cfg.CCollectors(seq, 7)
		b := cfg.CCollectors(seq, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("collector selection nondeterministic")
			}
		}
	}
}

func TestCollectorLoadSpreads(t *testing.T) {
	cfg := DefaultConfig(4, 0) // n = 13
	counts := make(map[int]int)
	for seq := uint64(1); seq <= 1000; seq++ {
		for _, id := range cfg.ECollectors(seq, 0) {
			counts[id]++
		}
	}
	// All non-primary replicas should collect a reasonable share
	// (pseudo-random balance, §V: "we balance the load over all replicas").
	for id := 2; id <= cfg.N(); id++ {
		if counts[id] < 40 {
			t.Errorf("replica %d selected only %d of ~83 expected times", id, counts[id])
		}
	}
	if counts[cfg.Primary(0)] != 0 {
		t.Error("primary selected as E-collector")
	}
}

func TestBlockHash(t *testing.T) {
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	h1 := BlockHash(1, 0, reqs)
	if h1 != BlockHash(1, 0, reqs) {
		t.Fatal("BlockHash not deterministic")
	}
	if h1 == BlockHash(2, 0, reqs) {
		t.Fatal("BlockHash ignores seq")
	}
	if h1 == BlockHash(1, 1, reqs) {
		t.Fatal("BlockHash ignores view (required by §VI safety argument)")
	}
	if h1 == BlockHash(1, 0, nil) {
		t.Fatal("BlockHash ignores requests")
	}
	reqs2 := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("y")}}
	if h1 == BlockHash(1, 0, reqs2) {
		t.Fatal("BlockHash ignores op bytes")
	}
}

func TestQuickBlockHashInjective(t *testing.T) {
	f := func(op1, op2 []byte, ts1, ts2 uint64) bool {
		a := BlockHash(1, 1, []Request{{Client: ClientBase, Timestamp: ts1, Op: op1}})
		b := BlockHash(1, 1, []Request{{Client: ClientBase, Timestamp: ts2, Op: op2}})
		same := ts1 == ts2 && string(op1) == string(op2)
		return (a == b) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDealSuite(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	suite, keys, err := InsecureSuite(cfg, "t")
	if err != nil {
		t.Fatalf("InsecureSuite: %v", err)
	}
	if len(keys) != cfg.N() {
		t.Fatalf("keys = %d, want %d", len(keys), cfg.N())
	}
	if suite.Sigma.Threshold() != cfg.QuorumFast() {
		t.Errorf("σ threshold = %d, want %d", suite.Sigma.Threshold(), cfg.QuorumFast())
	}
	if suite.Tau.Threshold() != cfg.QuorumSlow() {
		t.Errorf("τ threshold = %d, want %d", suite.Tau.Threshold(), cfg.QuorumSlow())
	}
	if suite.Pi.Threshold() != cfg.QuorumExec() {
		t.Errorf("π threshold = %d, want %d", suite.Pi.Threshold(), cfg.QuorumExec())
	}
	for i, k := range keys {
		if k.Sigma.ID() != i+1 || k.Tau.ID() != i+1 || k.Pi.ID() != i+1 {
			t.Fatalf("key ids misaligned at %d", i)
		}
	}
}

func TestMessageWireSizes(t *testing.T) {
	msgs := []Message{
		RequestMsg{Req: Request{Op: make([]byte, 100)}},
		PrePrepareMsg{Reqs: []Request{{Op: make([]byte, 100)}}},
		SignShareMsg{},
		FullCommitProofMsg{},
		PrepareMsg{},
		CommitMsg{},
		FullCommitProofSlowMsg{},
		SignStateMsg{},
		FullExecuteProofMsg{},
		ExecuteAckMsg{Val: []byte("v"), Proof: make([]byte, 50)},
		ReplyMsg{Val: []byte("v")},
		CheckpointShareMsg{},
		CheckpointCertMsg{},
		FetchStateMsg{},
		SnapshotMetaMsg{Root: make([]byte, 32)},
		FetchSnapshotChunkMsg{},
		SnapshotChunkMsg{Data: make([]byte, 1000)},
		ViewChangeMsg{Slots: []SlotInfo{{}}},
		NewViewMsg{ViewChanges: []ViewChangeMsg{{}}},
	}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%T WireSize = %d", m, m.WireSize())
		}
	}
	// Linearity sanity: collector certificates are constant-size,
	// independent of n (ingredient 1).
	small := FullCommitProofMsg{}.WireSize()
	if small > 200 {
		t.Errorf("commit proof is %dB; should be constant ~ one signature", small)
	}
}
