package core

import (
	"testing"
	"time"
)

// Sans-io unit tests driving a single replica through protocol phases with
// a fake environment, independent of the simulator.

type fakeApp struct {
	blocks  int
	ops     int
	digests [][]byte
}

func (a *fakeApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	a.blocks++
	a.ops += len(ops)
	out := make([][]byte, len(ops))
	for i := range out {
		out[i] = []byte("ok")
	}
	return out
}
func (a *fakeApp) Digest() []byte {
	d := []byte{byte(a.blocks)}
	a.digests = append(a.digests, d)
	return d
}
func (a *fakeApp) ProveOperation(uint64, int) ([]byte, error) { return []byte("proof"), nil }
func (a *fakeApp) Snapshot() ([]byte, error)                  { return []byte("snap"), nil }
func (a *fakeApp) Restore([]byte) error                       { return nil }
func (a *fakeApp) GarbageCollect(uint64)                      {}

// rig holds a replica under test plus all peer signing keys so the test
// can forge valid protocol messages from other replicas.
type rig struct {
	t     *testing.T
	cfg   Config
	suite CryptoSuite
	keys  []ReplicaKeys
	env   *fakeEnv
	app   *fakeApp
	r     *Replica
}

func newRig(t *testing.T, id int, tune func(*Config)) *rig {
	t.Helper()
	cfg := DefaultConfig(1, 0)
	cfg.BatchTimeout = 0
	cfg.CollectorStagger = 0
	if tune != nil {
		tune(&cfg)
	}
	suite, keys, err := InsecureSuite(cfg, "replica-test")
	if err != nil {
		t.Fatal(err)
	}
	env := &fakeEnv{}
	app := &fakeApp{}
	r, err := NewReplica(id, cfg, suite, keys[id-1], app, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, cfg: cfg, suite: suite, keys: keys, env: env, app: app, r: r}
}

func (rg *rig) signShare(from int, seq, view uint64, reqs []Request, fast bool) SignShareMsg {
	rg.t.Helper()
	h := BlockHash(seq, view, reqs)
	tau, err := rg.keys[from-1].Tau.Sign(h[:])
	if err != nil {
		rg.t.Fatal(err)
	}
	m := SignShareMsg{Seq: seq, View: view, Replica: from, TauSig: tau}
	if fast {
		sig, err := rg.keys[from-1].Sigma.Sign(h[:])
		if err != nil {
			rg.t.Fatal(err)
		}
		m.SigmaSig = sig
	}
	return m
}

func (rg *rig) sentOfType(match func(Message) bool) int {
	n := 0
	for _, s := range rg.env.sent {
		if match(s.msg) {
			n++
		}
	}
	return n
}

func TestNewReplicaValidation(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	suite, keys, _ := InsecureSuite(cfg, "x")
	if _, err := NewReplica(0, cfg, suite, keys[0], &fakeApp{}, &fakeEnv{}, nil); err == nil {
		t.Fatal("id 0 accepted")
	}
	if _, err := NewReplica(9, cfg, suite, keys[0], &fakeApp{}, &fakeEnv{}, nil); err == nil {
		t.Fatal("id beyond n accepted")
	}
	bad := cfg
	bad.Batch = 0
	if _, err := NewReplica(1, bad, suite, keys[0], &fakeApp{}, &fakeEnv{}, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBackupSendsSignSharesToCollectors(t *testing.T) {
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})

	collectors := rg.cfg.CCollectors(1, 0)
	sent := rg.sentOfType(func(m Message) bool {
		ss, ok := m.(SignShareMsg)
		if !ok {
			return false
		}
		if ss.Seq != 1 || len(ss.TauSig.Data) == 0 {
			t.Fatalf("bad sign-share %+v", ss)
		}
		// The fast-path σ share must be present (within the gate).
		if len(ss.SigmaSig.Data) == 0 {
			t.Fatal("σ share missing on the fast path")
		}
		return true
	})
	// One share per distinct collector that is not this replica.
	want := 0
	seen := map[int]bool{}
	for _, c := range collectors {
		if !seen[c] && c != 2 {
			want++
		}
		seen[c] = true
	}
	if sent != want {
		t.Fatalf("sign-shares sent = %d, want %d (collectors %v)", sent, want, collectors)
	}
}

func TestReplicaRejectsPrePrepareFromNonPrimary(t *testing.T) {
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(3, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs}) // 3 is not primary of view 0
	if got := rg.sentOfType(func(m Message) bool { _, ok := m.(SignShareMsg); return ok }); got != 0 {
		t.Fatal("replica signed a pre-prepare from a non-primary")
	}
}

func TestEquivocationTriggersViewChange(t *testing.T) {
	rg := newRig(t, 2, nil)
	reqsA := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("A")}}
	reqsB := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("B")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqsA})
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqsB})
	if !rg.r.InViewChange() {
		t.Fatal("equivocation did not trigger a view change")
	}
	if rg.sentOfType(func(m Message) bool { _, ok := m.(ViewChangeMsg); return ok }) == 0 {
		t.Fatal("no view-change message broadcast")
	}
}

func TestFullCommitProofCommitsAndExecutes(t *testing.T) {
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})

	h := BlockHash(1, 0, reqs)
	var shares []threshShare
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		sh, err := rg.keys[i-1].Sigma.Sign(h[:])
		if err != nil {
			t.Fatal(err)
		}
		shares = append(shares, sh)
	}
	sigma, err := rg.suite.Sigma.Combine(h[:], shares)
	if err != nil {
		t.Fatal(err)
	}
	rg.r.Deliver(3, FullCommitProofMsg{Seq: 1, View: 0, Sigma: sigma})
	if rg.app.blocks != 1 || rg.app.ops != 1 {
		t.Fatalf("executed blocks=%d ops=%d", rg.app.blocks, rg.app.ops)
	}
	if rg.r.LastExecuted() != 1 {
		t.Fatalf("LastExecuted = %d", rg.r.LastExecuted())
	}
	if rg.r.Metrics.FastCommits != 1 {
		t.Fatalf("FastCommits = %d", rg.r.Metrics.FastCommits)
	}
	// A forged proof for seq 2 must not commit.
	rg.r.Deliver(1, PrePrepareMsg{Seq: 2, View: 0, Reqs: reqs})
	rg.r.Deliver(3, FullCommitProofMsg{Seq: 2, View: 0, Sigma: threshSignature{Data: []byte("junk")}})
	if rg.r.LastExecuted() != 1 {
		t.Fatal("forged commit proof executed a block")
	}
}

func TestCollectorCombinesFastQuorum(t *testing.T) {
	// Make replica 2 a C-collector for some sequence and feed it 3f+c+1
	// sign-shares: it must broadcast a full-commit-proof.
	cfg := DefaultConfig(1, 0)
	var seq uint64
	for s := uint64(1); s < 64; s++ {
		for _, c := range cfg.CCollectors(s, 0) {
			if c == 2 {
				seq = s
				break
			}
		}
		if seq != 0 {
			break
		}
	}
	if seq == 0 {
		t.Skip("replica 2 not a collector in the first 64 slots")
	}
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		if i == 2 {
			continue // own share was produced by sendSignShare
		}
		rg.r.Deliver(i, rg.signShare(i, seq, 0, reqs, true))
	}
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FullCommitProofMsg); return ok }) == 0 {
		t.Fatal("collector did not broadcast a full-commit-proof at quorum")
	}
}

func TestSharesBufferedBeforePrePrepare(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	var seq uint64
	for s := uint64(1); s < 64; s++ {
		for _, c := range cfg.CCollectors(s, 0) {
			if c == 2 {
				seq = s
			}
		}
		if seq != 0 {
			break
		}
	}
	if seq == 0 {
		t.Skip("replica 2 not a collector early")
	}
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	// Shares arrive BEFORE the pre-prepare (WAN reordering).
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		if i == 2 {
			continue
		}
		rg.r.Deliver(i, rg.signShare(i, seq, 0, reqs, true))
	}
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FullCommitProofMsg); return ok }) != 0 {
		t.Fatal("proof sent before the pre-prepare arrived")
	}
	rg.r.Deliver(1, PrePrepareMsg{Seq: seq, View: 0, Reqs: reqs})
	if rg.sentOfType(func(m Message) bool { _, ok := m.(FullCommitProofMsg); return ok }) == 0 {
		t.Fatal("buffered shares were not replayed after the pre-prepare")
	}
}

func TestFastGateExcludesSigmaShareFarAhead(t *testing.T) {
	rg := newRig(t, 2, func(c *Config) { c.Win = 64 }) // gate = win/4 = 16
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	// Sequence 20 is beyond le(0) + 16: τ share only (§V-F restriction).
	rg.r.Deliver(1, PrePrepareMsg{Seq: 20, View: 0, Reqs: reqs})
	found := false
	for _, s := range rg.env.sent {
		if ss, ok := s.msg.(SignShareMsg); ok && ss.Seq == 20 {
			found = true
			if len(ss.SigmaSig.Data) != 0 {
				t.Fatal("σ share sent beyond the fast-path gate")
			}
			if len(ss.TauSig.Data) == 0 {
				t.Fatal("τ share missing")
			}
		}
	}
	if !found {
		t.Fatal("no sign-share sent")
	}
}

func TestProgressTimeoutStartsViewChange(t *testing.T) {
	rg := newRig(t, 2, func(c *Config) { c.ViewChangeTimeout = 100 * time.Millisecond })
	rg.r.Deliver(ClientBase, RequestMsg{Req: Request{Client: ClientBase, Timestamp: 1, Op: []byte("x")}})
	rg.env.advance(250 * time.Millisecond)
	if !rg.r.InViewChange() {
		t.Fatal("no view change after progress timeout")
	}
	if rg.r.View() != 1 {
		t.Fatalf("view = %d, want 1", rg.r.View())
	}
	// Duplicate client retries must not postpone the timeout (regression:
	// the timer is armed, not reset, on request arrival).
	rg2 := newRig(t, 3, func(c *Config) { c.ViewChangeTimeout = 100 * time.Millisecond })
	for i := 0; i < 5; i++ {
		rg2.r.Deliver(ClientBase, RequestMsg{Req: Request{Client: ClientBase, Timestamp: 1, Op: []byte("x")}})
		rg2.env.advance(30 * time.Millisecond)
	}
	if !rg2.r.InViewChange() {
		t.Fatal("client retries postponed the view-change timer")
	}
}

func TestPrimaryProposesAdaptively(t *testing.T) {
	// The adaptive batch heuristic (§V-C, §VIII) sizes blocks by pending
	// load: at low load a single request proposes immediately rather than
	// waiting to fill cfg.Batch.
	rg := newRig(t, 1, func(c *Config) {
		c.Batch = 8
		c.BatchTimeout = 50 * time.Millisecond
	})
	rg.r.Deliver(ClientBase, RequestMsg{Req: Request{Client: ClientBase, Timestamp: 1, Op: []byte("x")}})
	var proposed *PrePrepareMsg
	for _, s := range rg.env.sent {
		if pp, ok := s.msg.(PrePrepareMsg); ok {
			proposed = &pp
			break
		}
	}
	if proposed == nil {
		t.Fatal("low-load request not proposed")
	}
	if len(proposed.Reqs) != 1 || proposed.Seq != 1 {
		t.Fatalf("proposal = %+v", proposed)
	}
}

func TestReplyFromCache(t *testing.T) {
	rg := newRig(t, 2, nil)
	reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("x")}}
	rg.r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})
	h := BlockHash(1, 0, reqs)
	var shares []threshShare
	for i := 1; i <= rg.cfg.QuorumFast(); i++ {
		sh, _ := rg.keys[i-1].Sigma.Sign(h[:])
		shares = append(shares, sh)
	}
	sigma, _ := rg.suite.Sigma.Combine(h[:], shares)
	rg.r.Deliver(3, FullCommitProofMsg{Seq: 1, View: 0, Sigma: sigma})

	before := len(rg.env.sent)
	rg.r.Deliver(ClientBase, RequestMsg{Req: reqs[0]})
	var cached bool
	for _, s := range rg.env.sent[before:] {
		if rep, ok := s.msg.(ReplyMsg); ok && rep.Timestamp == 1 && s.to == ClientBase {
			cached = true
		}
	}
	if !cached {
		t.Fatal("retried executed request not served from the reply cache")
	}
}

type threshSignature = threshSig

func TestCheckpointShareQuorumAdvancesStable(t *testing.T) {
	rg := newRig(t, 2, func(c *Config) { c.CheckpointInterval = 1; c.Win = 8 })
	d := []byte("ckpt-digest")
	sd := CheckpointSigDigest(4, d)
	for i := 1; i <= rg.cfg.QuorumExec(); i++ {
		sh, err := rg.keys[i-1].Pi.Sign(sd)
		if err != nil {
			t.Fatal(err)
		}
		rg.r.Deliver(i, CheckpointShareMsg{Seq: 4, Replica: i, Digest: d, PiSig: sh})
	}
	if rg.r.LastStable() != 4 {
		t.Fatalf("LastStable = %d, want 4", rg.r.LastStable())
	}
}

func TestAdaptiveFastTimer(t *testing.T) {
	rg := newRig(t, 2, func(c *Config) { c.FastPathTimeout = 100 * time.Millisecond })
	r := rg.r

	// No observations: the configured floor applies.
	if got := r.fastTimerDuration(); got != 100*time.Millisecond {
		t.Fatalf("floor = %v, want 100ms", got)
	}

	// A large observed spread stretches the timer (2× the EWMA).
	r.observeFastSpread(200 * time.Millisecond)
	if got := r.fastTimerDuration(); got != 400*time.Millisecond {
		t.Fatalf("adaptive = %v, want 400ms", got)
	}

	// EWMA converges toward repeated small observations.
	for i := 0; i < 40; i++ {
		r.observeFastSpread(20 * time.Millisecond)
	}
	if got := r.fastTimerDuration(); got != 100*time.Millisecond {
		t.Fatalf("after small spreads = %v, want the 100ms floor", got)
	}

	// The cap bounds pathological observations (crashed replicas must not
	// inflate commit latency unboundedly).
	for i := 0; i < 40; i++ {
		r.observeFastSpread(10 * time.Second)
	}
	if got := r.fastTimerDuration(); got != 600*time.Millisecond {
		t.Fatalf("capped = %v, want 6×floor = 600ms", got)
	}
}
