package core

import (
	"encoding/binary"
	"testing"

	"sbft/internal/crypto/threshsig"
)

// FuzzDeliver feeds a replica arbitrary mutated protocol messages — the
// Byzantine-input surface (§II: up to f replicas may behave arbitrarily).
// The replica must never panic, never execute without a valid commit
// certificate, and never regress its execution frontier.
//
// The fuzz input is a script: each chunk selects a message type, header
// fields (seq, view, sender) and raw bytes used for signatures, digests
// and operation payloads. Because signature material is attacker-chosen
// garbage, any execution progress must come only from the valid messages
// the harness itself interleaves.
func FuzzDeliver(f *testing.F) {
	// Seed corpus: empty, tiny, and a few structured scripts.
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00})
	f.Add([]byte{0x05, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a})
	f.Add(bytesOfAll())

	cfg := DefaultConfig(1, 0)
	cfg.BatchTimeout = 0
	cfg.CollectorStagger = 0
	suite, keys, err := InsecureSuite(cfg, "fuzz-deliver")
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		app := &fakeApp{}
		env := &fakeEnv{}
		r, err := NewReplica(2, cfg, suite, keys[1], app, env, nil)
		if err != nil {
			t.Fatal(err)
		}
		// One honestly committed block, so the fuzzer attacks a replica
		// with real state (reply cache, executed frontier, slots).
		reqs := []Request{{Client: ClientBase, Timestamp: 1, Op: []byte("honest")}}
		r.Deliver(1, PrePrepareMsg{Seq: 1, View: 0, Reqs: reqs})
		h := BlockHash(1, 0, reqs)
		var shares []threshsig.Share
		for i := 1; i <= cfg.QuorumFast(); i++ {
			sh, _ := keys[i-1].Sigma.Sign(h[:])
			shares = append(shares, sh)
		}
		sigma, _ := suite.Sigma.Combine(h[:], shares)
		r.Deliver(3, FullCommitProofMsg{Seq: 1, View: 0, Sigma: sigma})
		if r.LastExecuted() != 1 {
			t.Fatal("honest setup failed")
		}
		baseBlocks := app.blocks

		prevLE := r.LastExecuted()
		// Cap the script so pathological multi-megabyte inputs keep each
		// exec (and input minimization) fast; 256 messages is plenty to
		// compose attack sequences.
		for steps := 0; len(data) > 0 && steps < 256; steps++ {
			var from int
			var msg any
			msg, from, data = nextFuzzMessage(data)
			if msg == nil {
				break
			}
			r.Deliver(from, msg)
			// Fire any timers the delivery armed (Byzantine input must not
			// corrupt state through timer paths either).
			env.advance(0)

			if le := r.LastExecuted(); le < prevLE {
				t.Fatalf("execution frontier regressed: %d → %d", prevLE, le)
			} else {
				prevLE = le
			}
		}
		// Garbage certificates must not commit anything new: the app saw
		// exactly the honest block (null blocks execute zero ops, so ops
		// count is the committed-work invariant).
		if app.ops != 1 {
			t.Fatalf("fuzzed input executed %d ops, want 1", app.ops)
		}
		if app.blocks > baseBlocks && r.LastExecuted() == 1 {
			t.Fatal("app executed blocks beyond the frontier")
		}
	})
}

// nextFuzzMessage decodes one message from the script. Layout per chunk:
// type(1) seq(1) view(1) sender(1) len(1) payload(len).
func nextFuzzMessage(data []byte) (msg any, from int, rest []byte) {
	if len(data) < 5 {
		return nil, 0, nil
	}
	typ, seqB, viewB, senderB, plen := data[0], data[1], data[2], data[3], int(data[4])
	data = data[5:]
	if plen > len(data) {
		plen = len(data)
	}
	payload := data[:plen]
	rest = data[plen:]

	seq := uint64(seqB)
	view := uint64(viewB % 4)
	from = int(senderB%6) + 1 // replicas 1..4 plus out-of-range senders
	if senderB%7 == 0 {
		from = ClientBase + int(senderB)
	}
	sig := threshsig.Signature{Data: payload}
	share := threshsig.Share{Signer: from, Data: payload}
	op := payload
	reqs := []Request{{Client: ClientBase + int(seqB%3), Timestamp: uint64(viewB), Op: op}}

	switch typ % 19 {
	case 0:
		msg = RequestMsg{Req: Request{Client: from, Timestamp: seq, Op: op}}
	case 1:
		msg = PrePrepareMsg{Seq: seq, View: view, Reqs: reqs}
	case 2:
		msg = SignShareMsg{Seq: seq, View: view, Replica: from, SigmaSig: share, TauSig: share}
	case 3:
		msg = FullCommitProofMsg{Seq: seq, View: view, Sigma: sig}
	case 4:
		msg = PrepareMsg{Seq: seq, View: view, Tau: sig}
	case 5:
		msg = CommitMsg{Seq: seq, View: view, Replica: from, TauTau: share}
	case 6:
		msg = FullCommitProofSlowMsg{Seq: seq, View: view, Tau: sig, TauTau: sig}
	case 7:
		msg = SignStateMsg{Seq: seq, Replica: from, Digest: payload, PiSig: share}
	case 8:
		msg = FullExecuteProofMsg{Seq: seq, Digest: payload, Pi: sig}
	case 9:
		msg = CheckpointShareMsg{Seq: seq, Replica: from, Digest: payload, PiSig: share}
	case 10:
		msg = CheckpointCertMsg{Seq: seq, Digest: payload, Pi: sig}
	case 11:
		msg = FetchCommitMsg{Replica: from, Seq: seq}
	case 12:
		msg = CommitInfoMsg{Seq: seq, View: view, Reqs: reqs, HasFast: seqB%2 == 0, Sigma: sig, Tau: sig, TauTau: sig}
	case 13:
		msg = FetchStateMsg{Replica: from, Seq: seq}
	case 14:
		// Exercise the chunked state-transfer receivers with junk metadata
		// and chunks (none of it certified, so all must be rejected).
		switch seqB % 3 {
		case 0:
			msg = SnapshotMetaMsg{Seq: seq, Root: payload, Pi: sig,
				Header: SnapshotHeader{AppDigest: payload, AppLen: uint64(len(payload)), ChunkSize: 4}}
		case 1:
			msg = FetchSnapshotChunkMsg{Replica: from, Seq: seq, Index: int(viewB)}
		default:
			msg = SnapshotChunkMsg{Seq: seq, Index: int(viewB), Data: payload}
		}
	case 15:
		msg = ViewChangeMsg{
			NewView: view, Replica: from, LastStable: seq,
			StableDigest: payload, StablePi: sig,
			Slots: []SlotInfo{{
				Seq: seq, HasCommitProofSlow: true, TauTau: sig, Tau: sig, SlowReqs: reqs,
				HasPrepare: true, PrepareTau: sig, PrepareReqs: reqs,
				HasCommitProof: true, Sigma: sig, FastReqs: reqs,
				HasPrePrepare: true, SigmaShare: share, PrePrepareReqs: reqs,
			}},
		}
	case 16:
		msg = NewViewMsg{View: view, ViewChanges: []ViewChangeMsg{{NewView: view, Replica: from, Slots: nil}}}
	case 17:
		msg = ReplyMsg{Seq: seq, L: int(viewB), Replica: from, Client: from, Timestamp: seq, Val: payload}
	default:
		// Unknown dynamic type: Deliver must ignore it.
		msg = struct{ X uint64 }{binary.BigEndian.Uint64(append(payload, make([]byte, 8)...)[:8])}
	}
	return msg, from, rest
}

// bytesOfAll builds a corpus entry exercising every message type once.
func bytesOfAll() []byte {
	var out []byte
	for typ := byte(0); typ < 19; typ++ {
		out = append(out, typ, typ+1, typ%3, typ%8, 4, 0xde, 0xad, 0xbe, 0xef)
	}
	return out
}
