package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sbft/internal/crypto/threshsig"
)

// ExecuteCert is a π-certified execute certificate for ONE request: the
// standalone, verifiable artifact behind the client's single-message
// acceptance rule (§V-A), detached from the client that earned it. It
// binds an operation, its result value and its position (seq, l) to a
// state digest carried by an f+1 π threshold signature plus the
// application's Merkle execution proof. Anyone holding the deployment's
// π public key can verify it — which is what makes an UNTRUSTED
// cross-shard coordinator possible (ROADMAP item 5): a shard's commit
// rule checks the other shards' certificates instead of trusting the
// party relaying them.
type ExecuteCert struct {
	Seq    uint64
	L      int
	Op     []byte
	Val    []byte
	Digest []byte
	Pi     threshsig.Signature
	Proof  []byte
}

// Encode serializes the certificate for embedding in application
// operations (cross-shard commit/abort evidence travels inside ordered
// ops, so replicas of the receiving shard verify it deterministically).
func (c *ExecuteCert) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("core: encoding execute cert: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeExecuteCert parses an encoded certificate.
func DecodeExecuteCert(data []byte) (*ExecuteCert, error) {
	var c ExecuteCert
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding execute cert: %w", err)
	}
	return &c, nil
}

// VerifyExecuteCert checks a certificate against a deployment's π scheme
// and application proof verifier: first the f+1 threshold signature over
// the certified state digest, then the application proof binding
// (op, val, seq, l) to that digest — exactly the client's §V-A
// acceptance checks, applied by a third party.
func VerifyExecuteCert(pi threshsig.Scheme, verify ProofVerifier, c *ExecuteCert) error {
	if c == nil {
		return fmt.Errorf("core: nil execute cert")
	}
	if err := pi.Verify(stateSigDigest(c.Seq, c.Digest), c.Pi); err != nil {
		return fmt.Errorf("core: execute cert π signature: %w", err)
	}
	if verify != nil {
		if err := verify(c.Digest, c.Op, c.Val, c.Seq, c.L, c.Proof); err != nil {
			return fmt.Errorf("core: execute cert proof: %w", err)
		}
	}
	return nil
}
