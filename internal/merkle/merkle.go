// Package merkle implements the Merkle tree interface the SBFT paper uses
// for data authentication (§IV, [58]): a digest over the service state and
// membership proofs that let a client accept a result from a single replica
// once the state digest carries an f+1 threshold signature.
//
// Two structures are provided:
//
//   - Tree: a static binary Merkle tree over an ordered list of leaves,
//     used to prove that an operation was executed at position l of the
//     decision block with sequence number s (proof(o, l, s, D, val)).
//   - Map: an incrementally-updatable sorted-key Merkle map used as the
//     authenticator of the key-value store state (digest(D) and get-proofs).
//
// Domain separation: leaf hashes are H(0x00 ‖ data) and interior hashes are
// H(0x01 ‖ left ‖ right) so a leaf can never be confused with an interior
// node (second-preimage hardening).
package merkle

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
)

// DigestSize is the size of all node hashes in bytes.
const DigestSize = sha256.Size

// Digest is a Merkle node or root hash.
type Digest [DigestSize]byte

// String renders a short hex prefix for logs.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:6]) }

var (
	// ErrProofInvalid reports a proof that fails verification.
	ErrProofInvalid = errors.New("merkle: invalid proof")
	// ErrIndexRange reports an out-of-range leaf index.
	ErrIndexRange = errors.New("merkle: leaf index out of range")
)

// LeafHash hashes leaf data with the leaf domain separator.
func LeafHash(data []byte) Digest {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(data)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// InteriorHash hashes two children with the interior domain separator.
func InteriorHash(left, right Digest) Digest {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Tree is a static binary Merkle tree over an ordered leaf list. Odd nodes
// at each level are promoted unchanged (Bitcoin-style duplication is
// deliberately avoided to prevent the CVE-2012-2459 ambiguity).
type Tree struct {
	levels [][]Digest // levels[0] = leaf hashes, last level = [root]
}

// NewTree builds a tree over the given leaves. An empty leaf list produces
// a tree whose root is the hash of the empty leaf set.
func NewTree(leaves [][]byte) *Tree {
	hashes := make([]Digest, len(leaves))
	for i, l := range leaves {
		hashes[i] = LeafHash(l)
	}
	return NewTreeFromHashes(hashes)
}

// NewTreeFromHashes builds a tree over pre-hashed leaves.
func NewTreeFromHashes(hashes []Digest) *Tree {
	t := &Tree{}
	level := make([]Digest, len(hashes))
	copy(level, hashes)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, InteriorHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

// Len reports the number of leaves.
func (t *Tree) Len() int { return len(t.levels[0]) }

// LeafHashAt returns the stored hash of leaf i. The checkpoint layer uses
// it to diff two snapshot commitments leaf-by-leaf (delta sets between
// retained generations) and to carry leaf hashes across incremental
// captures without re-hashing clean chunks.
func (t *Tree) LeafHashAt(i int) (Digest, error) {
	if i < 0 || i >= t.Len() {
		return Digest{}, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.Len())
	}
	return t.levels[0][i], nil
}

// Root returns the root digest. The root of an empty tree is LeafHash(nil)
// of the empty list sentinel.
func (t *Tree) Root() Digest {
	if len(t.levels[0]) == 0 {
		return emptyRoot
	}
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// ProofStep is one sibling on the leaf-to-root path.
type ProofStep struct {
	Hash  Digest
	Right bool // sibling is the right child
}

// Proof is a membership proof for one leaf.
type Proof struct {
	Index int
	Steps []ProofStep
}

// Prove returns the membership proof for leaf index i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.Len() {
		return Proof{}, fmt.Errorf("%w: %d of %d", ErrIndexRange, i, t.Len())
	}
	p := Proof{Index: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		if idx%2 == 0 {
			if idx+1 < len(level) {
				p.Steps = append(p.Steps, ProofStep{Hash: level[idx+1], Right: true})
			}
			// Odd promoted node: no sibling at this level.
		} else {
			p.Steps = append(p.Steps, ProofStep{Hash: level[idx-1], Right: false})
		}
		idx /= 2
	}
	return p, nil
}

// VerifyLeaf checks that data is the leaf at p.Index under root.
func VerifyLeaf(root Digest, data []byte, p Proof) error {
	return VerifyLeafHash(root, LeafHash(data), p)
}

// VerifyLeafHash checks a pre-hashed leaf against root.
func VerifyLeafHash(root Digest, leaf Digest, p Proof) error {
	cur := leaf
	for _, s := range p.Steps {
		if s.Right {
			cur = InteriorHash(cur, s.Hash)
		} else {
			cur = InteriorHash(s.Hash, cur)
		}
	}
	if cur != root {
		return ErrProofInvalid
	}
	return nil
}

// CheckProofShape verifies that a proof's step count and step
// orientations are exactly what leaf p.Index of a leafCount-leaf tree
// requires. VerifyLeafHash alone folds whatever steps the prover supplied
// — sound for binding data to the root, but a malicious prover could
// shift a valid proof to a different claimed Index without failing it.
// Verifiers that act on the index (the certified read path routes a key
// to its bucket leaf by index) must pin the shape first.
func CheckProofShape(p Proof, leafCount int) error {
	if p.Index < 0 || p.Index >= leafCount {
		return fmt.Errorf("%w: %d of %d", ErrIndexRange, p.Index, leafCount)
	}
	idx, n, used := p.Index, leafCount, 0
	for n > 1 {
		if idx%2 == 1 {
			if used >= len(p.Steps) || p.Steps[used].Right {
				return fmt.Errorf("%w: proof shape mismatch at step %d", ErrProofInvalid, used)
			}
			used++
		} else if idx+1 < n {
			if used >= len(p.Steps) || !p.Steps[used].Right {
				return fmt.Errorf("%w: proof shape mismatch at step %d", ErrProofInvalid, used)
			}
			used++
		}
		// else: odd promoted node, no step at this level.
		idx /= 2
		n = (n + 1) / 2
	}
	if used != len(p.Steps) {
		return fmt.Errorf("%w: %d trailing proof steps", ErrProofInvalid, len(p.Steps)-used)
	}
	return nil
}

// VerifyLeafAt checks both that the proof has the exact shape of leaf
// p.Index in a leafCount-leaf tree and that data folds to root through
// it: index-binding membership verification.
func VerifyLeafAt(root Digest, data []byte, p Proof, leafCount int) error {
	if err := CheckProofShape(p, leafCount); err != nil {
		return err
	}
	return VerifyLeafHash(root, LeafHash(data), p)
}

// Equal reports whether two byte slices match (constant-time not required;
// digests are public).
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
