package merkle

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func leavesOf(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return out
}

func TestTreeProveVerifyAllSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := leavesOf(n)
			tree := NewTree(leaves)
			root := tree.Root()
			for i := 0; i < n; i++ {
				p, err := tree.Prove(i)
				if err != nil {
					t.Fatalf("Prove(%d): %v", i, err)
				}
				if err := VerifyLeaf(root, leaves[i], p); err != nil {
					t.Fatalf("VerifyLeaf(%d): %v", i, err)
				}
			}
		})
	}
}

func TestTreeRejectsWrongLeaf(t *testing.T) {
	leaves := leavesOf(8)
	tree := NewTree(leaves)
	p, _ := tree.Prove(3)
	if err := VerifyLeaf(tree.Root(), []byte("not-the-leaf"), p); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("err=%v, want ErrProofInvalid", err)
	}
}

func TestTreeRejectsWrongPosition(t *testing.T) {
	leaves := leavesOf(8)
	tree := NewTree(leaves)
	p3, _ := tree.Prove(3)
	// Proof for index 3 must not authenticate leaf 4's data.
	if err := VerifyLeaf(tree.Root(), leaves[4], p3); err == nil {
		t.Fatal("proof for index 3 accepted leaf 4")
	}
}

func TestTreeRejectsTamperedProof(t *testing.T) {
	tree := NewTree(leavesOf(16))
	p, _ := tree.Prove(5)
	p.Steps[1].Hash[0] ^= 0xff
	if err := VerifyLeaf(tree.Root(), []byte("leaf-5"), p); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("err=%v, want ErrProofInvalid", err)
	}
}

func TestTreeProveOutOfRange(t *testing.T) {
	tree := NewTree(leavesOf(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tree.Prove(i); !errors.Is(err, ErrIndexRange) {
			t.Fatalf("Prove(%d): err=%v, want ErrIndexRange", i, err)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := NewTree(nil)
	if tree.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tree.Len())
	}
	if tree.Root() != emptyRoot {
		t.Fatal("empty tree root is not the empty sentinel")
	}
	nonEmpty := NewTree(leavesOf(1))
	if nonEmpty.Root() == tree.Root() {
		t.Fatal("empty and non-empty roots collide")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A single-leaf tree's root is the leaf hash; it must differ from the
	// interior hash of anything, and leaf data that looks like an interior
	// preimage must not produce an interior hash.
	l := LeafHash([]byte("x"))
	i := InteriorHash(l, l)
	if l == i {
		t.Fatal("leaf and interior hashes collide")
	}
	var pre []byte
	pre = append(pre, l[:]...)
	pre = append(pre, l[:]...)
	if LeafHash(pre) == i {
		t.Fatal("domain separation failed: leaf encoding of (l‖l) equals interior hash")
	}
}

func TestTreeDeterminism(t *testing.T) {
	a := NewTree(leavesOf(13)).Root()
	b := NewTree(leavesOf(13)).Root()
	if a != b {
		t.Fatal("same leaves produced different roots")
	}
	c := NewTree(leavesOf(14)).Root()
	if a == c {
		t.Fatal("different leaf sets produced the same root")
	}
}

func TestQuickTreeMembership(t *testing.T) {
	f := func(raw [][]byte, pick uint8) bool {
		if len(raw) == 0 {
			return true
		}
		tree := NewTree(raw)
		i := int(pick) % len(raw)
		p, err := tree.Prove(i)
		if err != nil {
			return false
		}
		return VerifyLeaf(tree.Root(), raw[i], p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapBasic(t *testing.T) {
	m := NewMap()
	if m.Len() != 0 {
		t.Fatal("new map not empty")
	}
	m.Set("a", []byte("1"))
	m.Set("b", []byte("2"))
	if v, ok := m.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if _, ok := m.Get("zz"); ok {
		t.Fatal("Get(zz) found a missing key")
	}
	m.Delete("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	m.Delete("never-existed") // must not panic or dirty semantics break
	if m.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", m.Len())
	}
}

func TestMapDigestChangesOnMutation(t *testing.T) {
	m := NewMap()
	d0 := m.Digest()
	m.Set("k", []byte("v1"))
	d1 := m.Digest()
	if d0 == d1 {
		t.Fatal("digest unchanged after Set")
	}
	m.Set("k", []byte("v2"))
	d2 := m.Digest()
	if d1 == d2 {
		t.Fatal("digest unchanged after overwrite")
	}
	m.Delete("k")
	d3 := m.Digest()
	if d3 != d0 {
		t.Fatal("digest after delete-all differs from empty digest")
	}
}

func TestMapDigestOrderIndependence(t *testing.T) {
	a := NewMap()
	a.Set("x", []byte("1"))
	a.Set("y", []byte("2"))
	a.Set("z", []byte("3"))
	b := NewMap()
	b.Set("z", []byte("3"))
	b.Set("x", []byte("1"))
	b.Set("y", []byte("2"))
	if a.Digest() != b.Digest() {
		t.Fatal("insertion order affected digest")
	}
}

func TestMapProveVerifyKey(t *testing.T) {
	m := NewMap()
	for i := 0; i < 50; i++ {
		m.Set(fmt.Sprintf("key%02d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	root := m.Digest()
	kp, err := m.ProveKey("key17")
	if err != nil {
		t.Fatalf("ProveKey: %v", err)
	}
	if err := VerifyKey(root, kp); err != nil {
		t.Fatalf("VerifyKey: %v", err)
	}

	t.Run("wrong value rejected", func(t *testing.T) {
		bad := kp
		bad.Value = []byte("forged")
		if err := VerifyKey(root, bad); !errors.Is(err, ErrProofInvalid) {
			t.Fatalf("err=%v, want ErrProofInvalid", err)
		}
	})
	t.Run("wrong key rejected", func(t *testing.T) {
		bad := kp
		bad.Key = "key18"
		if err := VerifyKey(root, bad); !errors.Is(err, ErrProofInvalid) {
			t.Fatalf("err=%v, want ErrProofInvalid", err)
		}
	})
	t.Run("stale root rejected", func(t *testing.T) {
		m.Set("key17", []byte("new"))
		kp2, _ := m.ProveKey("key17")
		if err := VerifyKey(root, kp2); !errors.Is(err, ErrProofInvalid) {
			t.Fatalf("err=%v, want ErrProofInvalid", err)
		}
	})
}

func TestMapProveMissingKey(t *testing.T) {
	m := NewMap()
	m.Set("a", []byte("1"))
	if _, err := m.ProveKey("b"); err == nil {
		t.Fatal("ProveKey of a missing key succeeded")
	}
}

func TestMapSnapshotRestore(t *testing.T) {
	m := NewMap()
	m.Set("a", []byte("1"))
	m.Set("b", []byte("2"))
	d := m.Digest()
	snap := m.Snapshot()

	m.Set("c", []byte("3"))
	if m.Digest() == d {
		t.Fatal("digest unchanged after post-snapshot mutation")
	}

	m2 := NewMap()
	m2.Restore(snap)
	if m2.Digest() != d {
		t.Fatal("restored map digest differs from snapshot-time digest")
	}

	// Snapshot must be a deep copy.
	snap["a"][0] = 'X'
	if v, _ := m2.Get("a"); string(v) == "X" {
		t.Fatal("snapshot aliases restored map storage")
	}
}

func TestMapGetReturnsCopy(t *testing.T) {
	m := NewMap()
	m.Set("k", []byte("abc"))
	v, _ := m.Get("k")
	v[0] = 'X'
	again, _ := m.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get exposed internal storage")
	}
}

func TestQuickMapDigestInjective(t *testing.T) {
	// Property: two maps with a differing value for some key have
	// different digests.
	f := func(keys []string, idx uint8, alt byte) bool {
		if len(keys) == 0 {
			return true
		}
		a, b := NewMap(), NewMap()
		for i, k := range keys {
			v := []byte{byte(i)}
			a.Set(k, v)
			b.Set(k, v)
		}
		target := keys[int(idx)%len(keys)]
		cur, _ := b.Get(target)
		b.Set(target, append(cur, alt))
		return a.Digest() != b.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
