package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkTreap validates the structural invariants of the authenticated
// treap: key order (BST), priority order (heap), and hash consistency.
func checkTreap(t *testing.T, m *Map) {
	t.Helper()
	var walk func(n *mapNode, min, max string) int
	walk = func(n *mapNode, min, max string) int {
		if n == nil {
			return 0
		}
		if min != "" && n.key <= min {
			t.Fatalf("BST violation: %q ≤ min %q", n.key, min)
		}
		if max != "" && n.key >= max {
			t.Fatalf("BST violation: %q ≥ max %q", n.key, max)
		}
		if n.left != nil && n.left.prio > n.prio {
			t.Fatalf("heap violation at %q", n.key)
		}
		if n.right != nil && n.right.prio > n.prio {
			t.Fatalf("heap violation at %q", n.key)
		}
		want := nodeHash(kvDigest(n.key, n.val), childHash(n.left), childHash(n.right))
		if n.hash != want {
			t.Fatalf("stale hash at %q", n.key)
		}
		return 1 + walk(n.left, min, n.key) + walk(n.right, n.key, max)
	}
	if got := walk(m.root, "", ""); got != m.count {
		t.Fatalf("count = %d, nodes = %d", m.count, got)
	}
}

func TestTreapInvariantsUnderChurn(t *testing.T) {
	m := NewMap()
	rng := rand.New(rand.NewSource(42))
	live := map[string]bool{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(300))
		switch rng.Intn(3) {
		case 0, 1:
			m.Set(k, []byte{byte(i)})
			live[k] = true
		case 2:
			m.Delete(k)
			delete(live, k)
		}
	}
	checkTreap(t, m)
	if m.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(live))
	}
	for k := range live {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("live key %q missing", k)
		}
	}
}

func TestTreapCanonicalShape(t *testing.T) {
	// Insertion order must not affect the digest (replicas build state in
	// whatever order their blocks arrive content-wise).
	keys := []string{"m", "a", "z", "q", "b", "x", "c"}
	forward, backward := NewMap(), NewMap()
	for _, k := range keys {
		forward.Set(k, []byte(k))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		backward.Set(keys[i], []byte(keys[i]))
	}
	if forward.Digest() != backward.Digest() {
		t.Fatal("insertion order changed the root digest")
	}
	// Deleting and re-inserting restores the exact digest.
	d := forward.Digest()
	forward.Delete("q")
	forward.Set("q", []byte("q"))
	if forward.Digest() != d {
		t.Fatal("delete+reinsert changed the digest")
	}
}

func TestQuickTreapMatchesReferenceMap(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint8
	}
	f := func(ops []op) bool {
		m := NewMap()
		ref := map[string][]byte{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%32)
			if o.Del {
				m.Delete(k)
				delete(ref, k)
			} else {
				m.Set(k, []byte{o.Val})
				ref[k] = []byte{o.Val}
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := m.Get(k)
			if !ok || string(got) != string(v) {
				return false
			}
		}
		// Rebuilding from the reference yields the same digest.
		m2 := NewMap()
		for k, v := range ref {
			m2.Set(k, v)
		}
		return m.Digest() == m2.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTreapProofsAlwaysVerify(t *testing.T) {
	f := func(keys []string, pick uint8) bool {
		m := NewMap()
		for i, k := range keys {
			m.Set(k, []byte{byte(i)})
		}
		if m.Len() == 0 {
			return true
		}
		all := m.Keys()
		k := all[int(pick)%len(all)]
		kp, err := m.ProveKey(k)
		if err != nil {
			return false
		}
		if VerifyKey(m.Digest(), kp) != nil {
			return false
		}
		// A tampered value must not verify.
		kp.Value = append(kp.Value, 0xFF)
		return VerifyKey(m.Digest(), kp) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapDeepProofPath(t *testing.T) {
	m := NewMap()
	for i := 0; i < 1000; i++ {
		m.Set(fmt.Sprintf("key-%04d", i), []byte("v"))
	}
	root := m.Digest()
	for _, k := range []string{"key-0000", "key-0500", "key-0999"} {
		kp, err := m.ProveKey(k)
		if err != nil {
			t.Fatalf("ProveKey(%s): %v", k, err)
		}
		if err := VerifyKey(root, kp); err != nil {
			t.Fatalf("VerifyKey(%s): %v", k, err)
		}
		// Proof must bind the position: swapping a step's direction breaks it.
		if len(kp.Steps) > 0 {
			kp.Steps[0].ProvenIsLeft = !kp.Steps[0].ProvenIsLeft
			if err := VerifyKey(root, kp); err == nil {
				t.Fatal("direction-flipped proof verified")
			}
		}
	}
}
