package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Map is an authenticated key-value map with incrementally-maintained
// digests: internally a treap (tree + heap) whose node priorities derive
// from the key hash, giving every replica the identical canonical shape
// regardless of insertion order. Node hashes commit to (key, value, left
// subtree, right subtree), so Digest is the root hash and mutations cost
// O(log n) re-hashing — the property that keeps per-block state digests
// cheap for SBFT's execution phase (§IV, §V-D).
type Map struct {
	root  *mapNode
	count int
}

type mapNode struct {
	key   string
	val   []byte
	prio  uint64
	left  *mapNode
	right *mapNode
	hash  Digest
}

// NewMap returns an empty authenticated map.
func NewMap() *Map { return &Map{} }

var emptyRoot = LeafHash([]byte("merkle:empty"))

// nodePrio derives the deterministic treap priority of a key.
func nodePrio(key string) uint64 {
	h := sha256.Sum256(append([]byte("merkle:prio:"), key...))
	return binary.BigEndian.Uint64(h[:8])
}

// kvDigest hashes a node's own (key, value) payload.
func kvDigest(key string, val []byte) Digest {
	h := sha256.New()
	h.Write([]byte{0x02})
	var lb [8]byte
	binary.BigEndian.PutUint64(lb[:], uint64(len(key)))
	h.Write(lb[:])
	h.Write([]byte(key))
	h.Write(val)
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

func childHash(n *mapNode) Digest {
	if n == nil {
		return emptyRoot
	}
	return n.hash
}

// nodeHash combines a node's payload digest with its children.
func nodeHash(kv, left, right Digest) Digest {
	h := sha256.New()
	h.Write([]byte{0x03})
	h.Write(kv[:])
	h.Write(left[:])
	h.Write(right[:])
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

func (n *mapNode) rehash() {
	n.hash = nodeHash(kvDigest(n.key, n.val), childHash(n.left), childHash(n.right))
}

// rotateRight lifts n.left; rotateLeft lifts n.right.
func rotateRight(n *mapNode) *mapNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.rehash()
	l.rehash()
	return l
}

func rotateLeft(n *mapNode) *mapNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.rehash()
	r.rehash()
	return r
}

func insert(n *mapNode, key string, val []byte, created *bool) *mapNode {
	if n == nil {
		*created = true
		nn := &mapNode{key: key, val: val, prio: nodePrio(key)}
		nn.rehash()
		return nn
	}
	switch {
	case key == n.key:
		n.val = val
		n.rehash()
	case key < n.key:
		n.left = insert(n.left, key, val, created)
		if n.left.prio > n.prio {
			return rotateRight(n)
		}
		n.rehash()
	default:
		n.right = insert(n.right, key, val, created)
		if n.right.prio > n.prio {
			return rotateLeft(n)
		}
		n.rehash()
	}
	return n
}

func remove(n *mapNode, key string, removed *bool) *mapNode {
	if n == nil {
		return nil
	}
	switch {
	case key < n.key:
		n.left = remove(n.left, key, removed)
		n.rehash()
	case key > n.key:
		n.right = remove(n.right, key, removed)
		n.rehash()
	default:
		*removed = true
		// Rotate the node down until it is a leaf, then drop it.
		switch {
		case n.left == nil && n.right == nil:
			return nil
		case n.left == nil:
			return remove(rotateLeft(n), key, removed)
		case n.right == nil:
			return remove(rotateRight(n), key, removed)
		case n.left.prio > n.right.prio:
			return remove(rotateRight(n), key, removed)
		default:
			return remove(rotateLeft(n), key, removed)
		}
	}
	return n
}

// Set stores value under key.
func (m *Map) Set(key string, value []byte) {
	v := append([]byte(nil), value...)
	var created bool
	m.root = insert(m.root, key, v, &created)
	if created {
		m.count++
	}
}

// Delete removes key if present.
func (m *Map) Delete(key string) {
	var removed bool
	m.root = remove(m.root, key, &removed)
	if removed {
		m.count--
	}
}

// Get returns a copy of the value and whether it exists.
func (m *Map) Get(key string) ([]byte, bool) {
	n := m.root
	for n != nil {
		switch {
		case key == n.key:
			return append([]byte(nil), n.val...), true
		case key < n.key:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, false
}

// Len reports the number of live keys.
func (m *Map) Len() int { return m.count }

// Digest returns the authenticated root over the current contents.
func (m *Map) Digest() Digest {
	if m.root == nil {
		return emptyRoot
	}
	return m.root.hash
}

// Keys returns the sorted key list.
func (m *Map) Keys() []string {
	out := make([]string, 0, m.count)
	var walk func(n *mapNode)
	walk = func(n *mapNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.key)
		walk(n.right)
	}
	walk(m.root)
	return out
}

// Snapshot returns a deep copy of the map contents.
func (m *Map) Snapshot() map[string][]byte {
	out := make(map[string][]byte, m.count)
	var walk func(n *mapNode)
	walk = func(n *mapNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out[n.key] = append([]byte(nil), n.val...)
		walk(n.right)
	}
	walk(m.root)
	return out
}

// Restore replaces the contents from a snapshot.
func (m *Map) Restore(snap map[string][]byte) {
	m.root = nil
	m.count = 0
	// Insert in sorted order for reproducible construction cost; the
	// treap shape is canonical regardless.
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m.Set(k, snap[k])
	}
}

// KeyProofStep is one ancestor on the path from a proven node to the root.
type KeyProofStep struct {
	// KV is the ancestor's own payload digest.
	KV Digest
	// Other is the hash of the ancestor's other child subtree.
	Other Digest
	// ProvenIsLeft reports whether the proven subtree hangs on the
	// ancestor's left.
	ProvenIsLeft bool
}

// KeyProof proves that a key holds a value under a Map digest. The target
// node's child hashes are disclosed so the verifier can reconstruct its
// node hash.
type KeyProof struct {
	Key       string
	Value     []byte
	LeftHash  Digest
	RightHash Digest
	Steps     []KeyProofStep
}

// ProveKey returns a membership proof for key.
func (m *Map) ProveKey(key string) (KeyProof, error) {
	var steps []KeyProofStep
	n := m.root
	for n != nil && n.key != key {
		st := KeyProofStep{KV: kvDigest(n.key, n.val)}
		if key < n.key {
			st.ProvenIsLeft = true
			st.Other = childHash(n.right)
			steps = append(steps, st)
			n = n.left
		} else {
			st.ProvenIsLeft = false
			st.Other = childHash(n.left)
			steps = append(steps, st)
			n = n.right
		}
	}
	if n == nil {
		return KeyProof{}, fmt.Errorf("merkle: key %q not present", key)
	}
	// Steps were collected root→node; verification walks node→root.
	for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
		steps[i], steps[j] = steps[j], steps[i]
	}
	return KeyProof{
		Key:       key,
		Value:     append([]byte(nil), n.val...),
		LeftHash:  childHash(n.left),
		RightHash: childHash(n.right),
		Steps:     steps,
	}, nil
}

// VerifyKey checks a KeyProof against a Map digest.
func VerifyKey(root Digest, kp KeyProof) error {
	h := nodeHash(kvDigest(kp.Key, kp.Value), kp.LeftHash, kp.RightHash)
	for _, st := range kp.Steps {
		if st.ProvenIsLeft {
			h = nodeHash(st.KV, h, st.Other)
		} else {
			h = nodeHash(st.KV, st.Other, h)
		}
	}
	if h != root {
		return ErrProofInvalid
	}
	return nil
}
