package apps

import (
	"bytes"
	"testing"

	"sbft/internal/core"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
)

func TestKVAppImplementsApplication(t *testing.T) {
	var _ core.Application = NewKVApp()
	var _ core.Application = NewEVMApp()
}

func TestKVAppProofRoundTrip(t *testing.T) {
	app := NewKVApp()
	ops := [][]byte{kvstore.Put("alpha", []byte("1")), kvstore.Get("alpha")}
	results := app.ExecuteBlock(1, ops)
	digest := app.Digest()

	for l := range ops {
		proof, err := app.ProveOperation(1, l)
		if err != nil {
			t.Fatalf("ProveOperation(%d): %v", l, err)
		}
		if err := VerifyKV(digest, ops[l], results[l], 1, l, proof); err != nil {
			t.Fatalf("VerifyKV(%d): %v", l, err)
		}
		if err := VerifyKV(digest, ops[l], []byte("forged"), 1, l, proof); err == nil {
			t.Fatal("forged result verified")
		}
	}
	if err := VerifyKV(digest, ops[0], results[0], 1, 0, []byte("not gob")); err == nil {
		t.Fatal("garbage proof verified")
	}
}

func TestKVAppSnapshotRestore(t *testing.T) {
	a := NewKVApp()
	a.ExecuteBlock(1, [][]byte{kvstore.Put("k", []byte("v"))})
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := NewKVApp()
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("restored digest differs")
	}
	next := [][]byte{kvstore.Put("k2", []byte("v2"))}
	a.ExecuteBlock(2, next)
	b.ExecuteBlock(2, next)
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("diverged after restore")
	}
}

func TestEVMAppProofRoundTrip(t *testing.T) {
	app := NewEVMApp()
	app.Ledger.Mint(evm.AddressFromBytes([]byte{0xD0}), 1_000_000)
	tx := evm.Tx{
		Kind: evm.TxCreate, From: evm.AddressFromBytes([]byte{0xD0}),
		GasLimit: 1_000_000, Data: evm.TokenDeploy(),
	}.Encode()
	results := app.ExecuteBlock(1, [][]byte{tx})
	digest := app.Digest()

	proof, err := app.ProveOperation(1, 0)
	if err != nil {
		t.Fatalf("ProveOperation: %v", err)
	}
	if err := VerifyEVM(digest, tx, results[0], 1, 0, proof); err != nil {
		t.Fatalf("VerifyEVM: %v", err)
	}
	if err := VerifyEVM(digest, tx, []byte("forged"), 1, 0, proof); err == nil {
		t.Fatal("forged receipt verified")
	}
	rcpt, err := evm.DecodeReceipt(results[0])
	if err != nil || !rcpt.OK {
		t.Fatalf("deploy receipt: %+v, %v", rcpt, err)
	}
}

func TestEVMAppGarbageCollect(t *testing.T) {
	app := NewEVMApp()
	for seq := uint64(1); seq <= 4; seq++ {
		app.ExecuteBlock(seq, [][]byte{{0x01}})
	}
	app.GarbageCollect(3)
	if _, err := app.ProveOperation(1, 0); err == nil {
		t.Fatal("GC'd block still provable")
	}
	if _, err := app.ProveOperation(3, 0); err != nil {
		t.Fatalf("retained block not provable: %v", err)
	}
}
