// Package apps adapts the authenticated key-value store and the EVM smart
// contract ledger to the replication engine's Application interface, and
// provides the matching client-side proof verifiers (§IV layering: generic
// service → authenticated KV store → smart contract engine).
package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"sbft/internal/core"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
)

// KVApp adapts kvstore.Store to core.Application.
type KVApp struct {
	Store *kvstore.Store
}

// NewKVApp returns an adapter over a fresh store.
func NewKVApp() *KVApp { return &KVApp{Store: kvstore.New()} }

var _ core.Application = (*KVApp)(nil)

// ExecuteBlock implements core.Application.
func (a *KVApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	return a.Store.ExecuteBlock(seq, ops)
}

// Digest implements core.Application.
func (a *KVApp) Digest() []byte { return a.Store.Digest() }

// ProveOperation implements core.Application, gob-encoding the Merkle
// proof for transport.
func (a *KVApp) ProveOperation(seq uint64, l int) ([]byte, error) {
	p, err := a.Store.ProveOperation(seq, l)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("apps: encoding kv proof: %w", err)
	}
	return buf.Bytes(), nil
}

// Snapshot implements core.Application.
func (a *KVApp) Snapshot() ([]byte, error) { return a.Store.Snapshot() }

// SnapshotChunks implements core.ChunkedSnapshotter, forwarding the
// store's incremental bucketed capture.
func (a *KVApp) SnapshotChunks() ([][]byte, bool, error) { return a.Store.SnapshotChunks() }

// ReadKey implements core.KeyReader: the op→key mapping of the certified
// read path.
func (a *KVApp) ReadKey(op []byte) (string, error) { return kvstore.ReadKey(op) }

// TxStats implements core.TwoPhaser, forwarding the store's cumulative
// cross-shard 2PC counters.
func (a *KVApp) TxStats() (prepares, commits, aborts uint64) { return a.Store.TxStats() }

// Restore implements core.Application.
func (a *KVApp) Restore(data []byte) error { return a.Store.Restore(data) }

// GarbageCollect implements core.Application.
func (a *KVApp) GarbageCollect(keepFrom uint64) { a.Store.GarbageCollect(keepFrom) }

// VerifyKV is the core.ProofVerifier for key-value clients.
func VerifyKV(digest []byte, op, val []byte, seq uint64, l int, proof []byte) error {
	var p kvstore.Proof
	if err := gob.NewDecoder(bytes.NewReader(proof)).Decode(&p); err != nil {
		return fmt.Errorf("apps: decoding kv proof: %w", err)
	}
	return kvstore.Verify(digest, op, val, seq, l, p)
}

// EVMApp adapts evm.Ledger to core.Application.
type EVMApp struct {
	Ledger *evm.Ledger
}

// NewEVMApp returns an adapter over a fresh ledger.
func NewEVMApp() *EVMApp { return &EVMApp{Ledger: evm.NewLedger()} }

var _ core.Application = (*EVMApp)(nil)

// ExecuteBlock implements core.Application.
func (a *EVMApp) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	return a.Ledger.ExecuteBlock(seq, ops)
}

// Digest implements core.Application.
func (a *EVMApp) Digest() []byte { return a.Ledger.Digest() }

// ProveOperation implements core.Application.
func (a *EVMApp) ProveOperation(seq uint64, l int) ([]byte, error) {
	p, err := a.Ledger.ProveOperation(seq, l)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("apps: encoding evm proof: %w", err)
	}
	return buf.Bytes(), nil
}

// Snapshot implements core.Application.
func (a *EVMApp) Snapshot() ([]byte, error) { return a.Ledger.Snapshot() }

// SnapshotChunks implements core.ChunkedSnapshotter, forwarding the
// ledger's incremental bucketed capture.
func (a *EVMApp) SnapshotChunks() ([][]byte, bool, error) { return a.Ledger.SnapshotChunks() }

// ReadKey implements core.KeyReader: the op→key mapping of the certified
// read path (balance queries).
func (a *EVMApp) ReadKey(op []byte) (string, error) { return evm.ReadKey(op) }

// Restore implements core.Application.
func (a *EVMApp) Restore(data []byte) error { return a.Ledger.Restore(data) }

// GarbageCollect implements core.Application.
func (a *EVMApp) GarbageCollect(keepFrom uint64) { a.Ledger.GarbageCollect(keepFrom) }

// VerifyEVM is the core.ProofVerifier for smart-contract clients.
func VerifyEVM(digest []byte, op, val []byte, seq uint64, l int, proof []byte) error {
	var p evm.Proof
	if err := gob.NewDecoder(bytes.NewReader(proof)).Decode(&p); err != nil {
		return fmt.Errorf("apps: decoding evm proof: %w", err)
	}
	return evm.Verify(digest, op, val, seq, l, p)
}
