// Package evm implements the smart-contract execution layer of the SBFT
// blockchain (§IV, §VIII): a deterministic stack-based virtual machine
// executing a substantial subset of EVM bytecode over an authenticated
// key-value state, plus the two Ethereum transaction types the paper models
// (contract creation and contract execution).
//
// Substitutions from the real EVM, documented in DESIGN.md: the hashing
// opcode uses SHA-256 (stdlib) instead of Keccak-256, and gas costs are a
// simplified schedule. Neither affects the replication workload shape: the
// engine performs real 256-bit arithmetic, memory, storage and control
// flow, and every replica reaches the same post-state digest.
package evm

// Opcode is a single EVM instruction.
type Opcode byte

// Supported opcodes. Values match the Ethereum yellow paper so real
// assembly listings map over directly.
const (
	STOP       Opcode = 0x00
	ADD        Opcode = 0x01
	MUL        Opcode = 0x02
	SUB        Opcode = 0x03
	DIV        Opcode = 0x04
	SDIV       Opcode = 0x05
	MOD        Opcode = 0x06
	SMOD       Opcode = 0x07
	ADDMOD     Opcode = 0x08
	MULMOD     Opcode = 0x09
	EXP        Opcode = 0x0a
	SIGNEXTEND Opcode = 0x0b

	LT     Opcode = 0x10
	GT     Opcode = 0x11
	SLT    Opcode = 0x12
	SGT    Opcode = 0x13
	EQ     Opcode = 0x14
	ISZERO Opcode = 0x15
	AND    Opcode = 0x16
	OR     Opcode = 0x17
	XOR    Opcode = 0x18
	NOT    Opcode = 0x19
	BYTE   Opcode = 0x1a
	SHL    Opcode = 0x1b
	SHR    Opcode = 0x1c

	SHA3 Opcode = 0x20

	ADDRESS      Opcode = 0x30
	BALANCE      Opcode = 0x31
	CALLER       Opcode = 0x33
	CALLVALUE    Opcode = 0x34
	CALLDATALOAD Opcode = 0x35
	CALLDATASIZE Opcode = 0x36
	CALLDATACOPY Opcode = 0x37
	CODESIZE     Opcode = 0x38
	CODECOPY     Opcode = 0x39

	BLOCKNUM  Opcode = 0x43 // NUMBER
	TIMESTAMP Opcode = 0x42

	POP      Opcode = 0x50
	MLOAD    Opcode = 0x51
	MSTORE   Opcode = 0x52
	MSTORE8  Opcode = 0x53
	SLOAD    Opcode = 0x54
	SSTORE   Opcode = 0x55
	JUMP     Opcode = 0x56
	JUMPI    Opcode = 0x57
	PC       Opcode = 0x58
	MSIZE    Opcode = 0x59
	GAS      Opcode = 0x5a
	JUMPDEST Opcode = 0x5b

	PUSH1  Opcode = 0x60
	PUSH2  Opcode = 0x61
	PUSH32 Opcode = 0x7f
	DUP1   Opcode = 0x80
	DUP2   Opcode = 0x81
	DUP3   Opcode = 0x82
	DUP16  Opcode = 0x8f
	SWAP1  Opcode = 0x90
	SWAP2  Opcode = 0x91
	SWAP16 Opcode = 0x9f

	LOG0 Opcode = 0xa0
	LOG1 Opcode = 0xa1
	LOG2 Opcode = 0xa2
	LOG3 Opcode = 0xa3
	LOG4 Opcode = 0xa4

	CREATE Opcode = 0xf0
	CALL   Opcode = 0xf1
	RETURN Opcode = 0xf3
	REVERT Opcode = 0xfd
)

// opNames maps opcodes to mnemonics for tracing and error messages.
var opNames = map[Opcode]string{
	STOP: "STOP", ADD: "ADD", MUL: "MUL", SUB: "SUB", DIV: "DIV", SDIV: "SDIV",
	MOD: "MOD", SMOD: "SMOD", ADDMOD: "ADDMOD", MULMOD: "MULMOD", EXP: "EXP",
	SIGNEXTEND: "SIGNEXTEND", LT: "LT", GT: "GT", SLT: "SLT", SGT: "SGT",
	EQ: "EQ", ISZERO: "ISZERO", AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	BYTE: "BYTE", SHL: "SHL", SHR: "SHR", SHA3: "SHA3", ADDRESS: "ADDRESS",
	BALANCE: "BALANCE", CALLER: "CALLER", CALLVALUE: "CALLVALUE",
	CALLDATALOAD: "CALLDATALOAD", CALLDATASIZE: "CALLDATASIZE",
	CALLDATACOPY: "CALLDATACOPY", CODESIZE: "CODESIZE", CODECOPY: "CODECOPY",
	BLOCKNUM: "NUMBER", TIMESTAMP: "TIMESTAMP", POP: "POP", MLOAD: "MLOAD",
	MSTORE: "MSTORE", MSTORE8: "MSTORE8", SLOAD: "SLOAD", SSTORE: "SSTORE",
	JUMP: "JUMP", JUMPI: "JUMPI", PC: "PC", MSIZE: "MSIZE", GAS: "GAS",
	JUMPDEST: "JUMPDEST", LOG0: "LOG0", LOG1: "LOG1", LOG2: "LOG2",
	LOG3: "LOG3", LOG4: "LOG4", CREATE: "CREATE", CALL: "CALL",
	RETURN: "RETURN", REVERT: "REVERT",
}

// Name returns the mnemonic of op, or a hex form for unknown bytes.
func (op Opcode) Name() string {
	if n, ok := opNames[op]; ok {
		return n
	}
	if op >= PUSH1 && op <= PUSH32 {
		return "PUSH"
	}
	if op >= DUP1 && op <= DUP16 {
		return "DUP"
	}
	if op >= SWAP1 && op <= SWAP16 {
		return "SWAP"
	}
	return "INVALID"
}
