package evm

import (
	"strings"

	"sbft/internal/snapcodec"
)

// Keyspace partitioning for sharded deployments (ROADMAP item 5).
//
// The ledger partitions by ACCOUNT: every world-state key embeds exactly
// one account token (the hex address segment after the first '/'), and
// an account's balance, nonce, code and storage all route to the same
// shard — a single-account transaction touches one partition. The guard
// installed on the MapState rejects writes to foreign accounts, the
// per-transaction revert in ExecuteBlock turns any rejection into a
// whole-transaction rollback with a deterministic error receipt, and the
// lock set lets a future cross-shard commit protocol park accounts while
// a distributed transaction is in flight. Full proof-carrying 2PC over
// EVM transactions (the kvstore tx.go treatment) is documented future
// work; this layer provides the partition discipline it will sit on.

// Deterministic receipt error classes for guard violations.
const (
	ErrClassWrongShard = "wrong-shard"
	ErrClassLocked     = "locked"
)

type guardError string

func (e guardError) Error() string { return string(e) }

// AccountToken extracts the account routing token from a world-state key:
// the hex address between the first and second '/' (or end of key). Keys
// without a '/' route by their full text (defensive; the ledger never
// writes such keys).
func AccountToken(key string) string {
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return key
	}
	rest := key[i+1:]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return rest[:j]
	}
	return rest
}

// RouteAccount maps an account to its owning shard among k groups, with
// the same FNV-1a discipline as kvstore.RouteKey: a pure function every
// replica and client agrees on.
func RouteAccount(a Address, shards int) int {
	if shards <= 1 {
		return 0
	}
	return snapcodec.BucketOf(hexStr(a[:]), shards)
}

// Partition makes the ledger shard `shard` of a k-group deployment:
// transactions writing any foreign account roll back with a
// "wrong-shard" receipt. All replicas of the group must be configured
// identically before sequence 1, and AFTER genesis (genesis mints of
// foreign accounts would otherwise be refused). shards <= 1 removes the
// partition (locks remain enforced).
func (l *Ledger) Partition(shard, shards int) {
	l.shardID, l.shards = shard, shards
	l.state.SetGuard(l.guardKey)
}

// Shard reports the ledger's shard id and total shard count (0,0 when
// partitioning is not enabled).
func (l *Ledger) Shard() (int, int) { return l.shardID, l.shards }

// LockAccount parks an account: transactions writing it roll back with a
// "locked" receipt until UnlockAccount. The lock set is deterministic
// only if driven identically on every replica of the group — it is the
// in-flight-transaction hook for the future EVM cross-shard commit
// protocol, not client-reachable state (it is not part of snapshots).
func (l *Ledger) LockAccount(a Address) {
	if l.lockedAccounts == nil {
		l.lockedAccounts = make(map[string]bool)
	}
	l.lockedAccounts[hexStr(a[:])] = true
	l.state.SetGuard(l.guardKey)
}

// UnlockAccount releases a parked account.
func (l *Ledger) UnlockAccount(a Address) { delete(l.lockedAccounts, a.hex()) }

// LockedAccounts reports how many accounts are currently parked.
func (l *Ledger) LockedAccounts() int { return len(l.lockedAccounts) }

func (a Address) hex() string { return hexStr(a[:]) }

// reinstallGuard re-attaches the guard after Restore swaps the MapState
// out (state transfer must not silently un-partition a replica).
func (l *Ledger) reinstallGuard() {
	if l.shards > 0 || l.lockedAccounts != nil {
		l.state.SetGuard(l.guardKey)
	}
}

// guardKey is the MapState write guard: foreign partition first, then
// the lock set.
func (l *Ledger) guardKey(key string) error {
	tok := AccountToken(key)
	if l.shards > 1 && snapcodec.BucketOf(tok, l.shards) != l.shardID {
		return guardError(ErrClassWrongShard)
	}
	if l.lockedAccounts[tok] {
		return guardError(ErrClassLocked)
	}
	return nil
}
