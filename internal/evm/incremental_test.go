package evm

import (
	"bytes"
	"testing"

	"sbft/internal/snapcodec"
)

func concatChunks(chunks [][]byte) []byte {
	var buf bytes.Buffer
	for _, c := range chunks {
		buf.Write(c)
	}
	return buf.Bytes()
}

// captureMaps decodes both capture paths of the same ledger and returns
// their state maps for comparison.
func captureMaps(t *testing.T, l *Ledger) (bucketed, flat map[string][]byte) {
	t.Helper()
	chunks, ok, err := l.SnapshotChunks()
	if err != nil || !ok {
		t.Fatalf("SnapshotChunks: ok=%v err=%v", ok, err)
	}
	bst, _, err := snapcodec.DecodeBucketed(concatChunks(chunks))
	if err != nil {
		t.Fatalf("DecodeBucketed: %v", err)
	}
	flatBlob, err := l.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	fst, err := snapcodec.Decode(flatBlob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if bst.LastSeq != fst.LastSeq || !bytes.Equal(bst.Digest, fst.Digest) {
		t.Fatalf("capture metadata diverged: bucketed (%d,%x) flat (%d,%x)",
			bst.LastSeq, bst.Digest, fst.LastSeq, fst.Digest)
	}
	return bst.ToMap(), fst.ToMap()
}

func requireSameState(t *testing.T, bucketed, flat map[string][]byte, when string) {
	t.Helper()
	if len(bucketed) != len(flat) {
		t.Fatalf("%s: tracker mirror has %d entries, state map %d", when, len(bucketed), len(flat))
	}
	for k, v := range flat {
		if !bytes.Equal(bucketed[k], v) {
			t.Fatalf("%s: key %q diverged between tracker and state map", when, k)
		}
	}
}

// TestLedgerTrackerFollowsExecutionAndRollback drives genesis, successful
// execution, and failed transactions (whose journal rollback mutates the
// state map outside the normal write path) and checks after every block
// that the incremental capture describes exactly the same state as the
// flat one — i.e. the write hook saw every mutation, reverts included.
func TestLedgerTrackerFollowsExecutionAndRollback(t *testing.T) {
	l := NewLedger()
	deployer := addr(0xD0)
	l.Mint(deployer, 1_000_000)
	b, f := captureMaps(t, l)
	requireSameState(t, b, f, "after genesis")

	token := ContractAddress(deployer, 0)
	blocks := [][][]byte{
		{deployTokenTx(deployer)},
		{Tx{Kind: TxCall, From: deployer, To: token, GasLimit: 1_000_000,
			Data: TokenCalldata(TokenMint, addr(0xA1), 500)}.Encode()},
		// Value transfer writes both balances before the callee runs;
		// garbage calldata then fails the call, so RevertTo must undo
		// those balance writes — through the write hook.
		{Tx{Kind: TxCall, From: deployer, To: token, Value: 5, GasLimit: 1_000_000,
			Data: []byte{0xDE, 0xAD}}.Encode()},
		// Plain transfer from an empty account: fails upfront.
		{Tx{Kind: TxCall, From: addr(0x01), To: addr(0x02), Value: 999,
			GasLimit: 100_000}.Encode()},
		{Tx{Kind: TxCall, From: deployer, To: token, GasLimit: 1_000_000,
			Data: TokenCalldata(TokenTransfer, addr(0xB2), 0)}.Encode()},
	}
	sawFailure := false
	for i, blk := range blocks {
		res := l.ExecuteBlock(uint64(i+1), blk)
		for _, enc := range res {
			rcpt, err := DecodeReceipt(enc)
			if err != nil {
				t.Fatalf("block %d: DecodeReceipt: %v", i+1, err)
			}
			if !rcpt.OK {
				sawFailure = true
			}
		}
		b, f := captureMaps(t, l)
		requireSameState(t, b, f, "after block")
	}
	if !sawFailure {
		t.Fatalf("scenario exercised no failed transaction; rollback path untested")
	}
}

func TestLedgerRestoreFromBucketedCapture(t *testing.T) {
	src := NewLedger()
	deployer := addr(0xD0)
	src.Mint(deployer, 1_000_000)
	src.ExecuteBlock(1, [][]byte{deployTokenTx(deployer)})
	src.ExecuteBlock(2, [][]byte{Tx{Kind: TxCall, From: deployer,
		To: ContractAddress(deployer, 0), GasLimit: 1_000_000,
		Data: TokenCalldata(TokenMint, addr(0xA1), 42)}.Encode()})

	chunks, _, _ := src.SnapshotChunks()
	blob := concatChunks(chunks)

	dst := NewLedger()
	if err := dst.Restore(blob); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if dst.LastExecuted() != src.LastExecuted() || !bytes.Equal(dst.Digest(), src.Digest()) {
		t.Fatalf("restored ledger diverged from source")
	}
	reChunks, _, _ := dst.SnapshotChunks()
	if !bytes.Equal(concatChunks(reChunks), blob) {
		t.Fatalf("post-restore capture differs from the restored snapshot")
	}

	// Execution continues on the restored ledger and the tracker keeps
	// following it (the write hook is re-installed by Restore).
	tx := Tx{Kind: TxCall, From: deployer, To: ContractAddress(deployer, 0),
		GasLimit: 1_000_000, Data: TokenCalldata(TokenMint, addr(0xA2), 7)}.Encode()
	src.ExecuteBlock(3, [][]byte{tx})
	dst.ExecuteBlock(3, [][]byte{tx})
	if !bytes.Equal(dst.Digest(), src.Digest()) {
		t.Fatalf("post-restore execution diverged")
	}
	b, f := captureMaps(t, dst)
	requireSameState(t, b, f, "after post-restore execution")
}
