package evm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"sbft/internal/merkle"
	"sbft/internal/snapcodec"
)

// TxKind distinguishes the two Ethereum transaction types the paper models
// (§IV): contract creation and contract execution.
type TxKind uint8

// Transaction kinds.
const (
	TxCreate TxKind = iota + 1
	TxCall
	// TxBalance is a read-only balance query: executed through the
	// ordering path it returns the balance bytes in the receipt, and
	// being side-effect-free it is also servable as a certified
	// single-replica read (ReadKey maps it to the balance state key).
	TxBalance
)

// Tx is one ledger transaction.
type Tx struct {
	Kind     TxKind
	From     Address
	To       Address // ignored for TxCreate
	Value    uint64
	GasLimit uint64
	Data     []byte // init code (create) or calldata (call)
}

// Errors returned by the ledger layer.
var (
	ErrBadTx        = errors.New("evm: malformed transaction")
	ErrUnknownBlock = errors.New("evm: block not retained")
	ErrBadProof     = errors.New("evm: invalid execution proof")
)

// Encode serializes the transaction.
func (tx Tx) Encode() []byte {
	buf := make([]byte, 0, 1+20+20+8+8+4+len(tx.Data))
	buf = append(buf, byte(tx.Kind))
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tx.Value)
	buf = binary.BigEndian.AppendUint64(buf, tx.GasLimit)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(tx.Data)))
	buf = append(buf, tx.Data...)
	return buf
}

// DecodeTx parses an encoded transaction.
func DecodeTx(data []byte) (Tx, error) {
	const hdr = 1 + 20 + 20 + 8 + 8 + 4
	if len(data) < hdr {
		return Tx{}, fmt.Errorf("%w: %d bytes", ErrBadTx, len(data))
	}
	var tx Tx
	tx.Kind = TxKind(data[0])
	if tx.Kind != TxCreate && tx.Kind != TxCall && tx.Kind != TxBalance {
		return Tx{}, fmt.Errorf("%w: kind %d", ErrBadTx, tx.Kind)
	}
	copy(tx.From[:], data[1:21])
	copy(tx.To[:], data[21:41])
	tx.Value = binary.BigEndian.Uint64(data[41:49])
	tx.GasLimit = binary.BigEndian.Uint64(data[49:57])
	dlen := binary.BigEndian.Uint32(data[57:61])
	if uint32(len(data)-hdr) != dlen {
		return Tx{}, fmt.Errorf("%w: data length %d, have %d", ErrBadTx, dlen, len(data)-hdr)
	}
	tx.Data = append([]byte(nil), data[hdr:]...)
	return tx, nil
}

// Receipt is the result of executing one transaction.
type Receipt struct {
	OK       bool
	Reverted bool
	GasUsed  uint64
	Ret      []byte
	Created  Address // set for successful creations
	Err      string  // deterministic error class, empty on success
}

// Encode serializes the receipt (the per-operation "val" in the paper's
// execute-ack). The encoding is canonical fixed framing, NOT gob:
// receipt bytes land in the certified last-reply table and in block
// records compared across replicas, so they must be identical in every
// process (gob embeds process-global type ids).
func (r Receipt) Encode() []byte {
	var flags byte
	if r.OK {
		flags |= 1
	}
	if r.Reverted {
		flags |= 2
	}
	buf := make([]byte, 0, 8+1+8+8+len(r.Ret)+len(r.Created)+8+len(r.Err))
	buf = append(buf, "evmrcpt1"...)
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, r.GasUsed)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(r.Ret)))
	buf = append(buf, r.Ret...)
	buf = append(buf, r.Created[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(r.Err)))
	buf = append(buf, r.Err...)
	return buf
}

// DecodeReceipt parses an encoded receipt.
func DecodeReceipt(data []byte) (Receipt, error) {
	const magic = "evmrcpt1"
	if len(data) < len(magic)+1+8+8 || string(data[:len(magic)]) != magic {
		return Receipt{}, fmt.Errorf("evm: bad receipt framing")
	}
	data = data[len(magic):]
	var r Receipt
	flags := data[0]
	r.OK, r.Reverted = flags&1 != 0, flags&2 != 0
	data = data[1:]
	r.GasUsed = binary.BigEndian.Uint64(data)
	data = data[8:]
	retLen := binary.BigEndian.Uint64(data)
	data = data[8:]
	if retLen > uint64(len(data)) {
		return Receipt{}, fmt.Errorf("evm: truncated receipt ret")
	}
	if retLen > 0 {
		r.Ret = append([]byte(nil), data[:retLen]...)
	}
	data = data[retLen:]
	if len(data) < len(r.Created)+8 {
		return Receipt{}, fmt.Errorf("evm: truncated receipt")
	}
	copy(r.Created[:], data[:len(r.Created)])
	data = data[len(r.Created):]
	errLen := binary.BigEndian.Uint64(data)
	data = data[8:]
	if errLen != uint64(len(data)) {
		return Receipt{}, fmt.Errorf("evm: bad receipt error length")
	}
	r.Err = string(data)
	return r, nil
}

// Ledger is the replica-side smart-contract application: it executes
// blocks of transactions through the VM over an authenticated state and
// produces digests and per-transaction proofs exactly like the key-value
// store, so it plugs into the same replication engine (§IV layering).
type Ledger struct {
	stateMap *merkle.Map
	state    *MapState
	tracker  *snapcodec.Tracker
	lastSeq  uint64
	digest   []byte
	executed map[uint64]*execRecord

	// Account partitioning and locks (partition.go). shards==0 means
	// partitioning is not enabled.
	shardID        int
	shards         int
	lockedAccounts map[string]bool
}

type execRecord struct {
	tree    *merkle.Tree
	kvRoot  merkle.Digest
	ops     [][]byte
	results [][]byte
}

// NewLedger returns an empty contract ledger.
func NewLedger() *Ledger {
	m := merkle.NewMap()
	l := &Ledger{
		stateMap: m,
		state:    NewMapState(m),
		tracker:  snapcodec.NewTracker(snapcodec.DefaultBuckets),
		executed: make(map[uint64]*execRecord),
	}
	l.state.SetWriteHook(l.trackWrite)
	l.digest = stateDigest(0, m.Digest(), merkle.NewTree(nil).Root())
	return l
}

// trackWrite mirrors every world-state mutation (genesis, execution, and
// journal rollbacks alike) into the incremental snapshot tracker.
func (l *Ledger) trackWrite(key string, val []byte, deleted bool) {
	if deleted {
		l.tracker.Delete(key)
		return
	}
	l.tracker.Set(key, val)
}

func stateDigest(seq uint64, kvRoot, execRoot merkle.Digest) []byte {
	h := sha256.New()
	h.Write([]byte("sbft:evm-state"))
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], seq)
	h.Write(sb[:])
	h.Write(kvRoot[:])
	h.Write(execRoot[:])
	return h.Sum(nil)
}

func execLeaf(l int, op, val []byte) []byte {
	buf := make([]byte, 0, 8+len(op)+len(val))
	buf = binary.BigEndian.AppendUint32(buf, uint32(l))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(op)))
	buf = append(buf, op...)
	buf = append(buf, val...)
	return buf
}

// Mint credits an account balance outside consensus, for genesis setup in
// tests, examples and workload generation. All replicas must apply the
// same genesis before sequence 1.
func (l *Ledger) Mint(a Address, amount uint64) {
	l.state.SetBalance(a, new(big.Int).Add(l.state.GetBalance(a), new(big.Int).SetUint64(amount)))
	l.state.DiscardJournal()
	l.refreshGenesisDigest()
}

// GenesisCreate deploys a contract outside consensus (genesis block). All
// replicas must apply identical genesis operations before sequence 1.
func (l *Ledger) GenesisCreate(from Address, initCode []byte, gas uint64) (Address, error) {
	vm := NewVM(l.state, Context{GasLimit: gas})
	addr, res, err := vm.Create(from, nil, initCode, gas)
	l.state.DiscardJournal()
	l.refreshGenesisDigest()
	if err != nil {
		return Address{}, fmt.Errorf("evm: genesis create: %w", err)
	}
	if res.Reverted {
		return Address{}, fmt.Errorf("evm: genesis create reverted")
	}
	return addr, nil
}

// refreshGenesisDigest recomputes the pre-block-1 digest after genesis
// mutations so replicas with identical genesis share digests from the
// start.
func (l *Ledger) refreshGenesisDigest() {
	if l.lastSeq == 0 {
		l.digest = stateDigest(0, l.stateMap.Digest(), merkle.NewTree(nil).Root())
	}
}

// Balance reads an account balance.
func (l *Ledger) Balance(a Address) *big.Int { return l.state.GetBalance(a) }

// Storage reads a contract storage word.
func (l *Ledger) Storage(a Address, k Word) Word { return l.state.GetStorage(a, k) }

// Code reads installed contract code.
func (l *Ledger) Code(a Address) []byte { return l.state.GetCode(a) }

// applyTx executes one transaction, returning its receipt. Failed
// transactions roll back their state effects but still consume a slot in
// the block (deterministically), as in Ethereum.
func (l *Ledger) applyTx(seq uint64, raw []byte) Receipt {
	tx, err := DecodeTx(raw)
	if err != nil {
		return Receipt{Err: "malformed"}
	}
	vm := NewVM(l.state, Context{BlockNum: seq, GasLimit: tx.GasLimit})
	value := new(big.Int).SetUint64(tx.Value)
	switch tx.Kind {
	case TxCreate:
		addr, res, err := vm.Create(tx.From, value, tx.Data, tx.GasLimit)
		if err != nil {
			return Receipt{GasUsed: res.GasUsed, Err: errClass(err)}
		}
		if res.Reverted {
			return Receipt{GasUsed: res.GasUsed, Reverted: true, Ret: res.Ret}
		}
		return Receipt{OK: true, GasUsed: res.GasUsed, Created: addr, Ret: res.Ret}
	case TxCall:
		res, err := vm.Call(tx.From, tx.To, value, tx.Data, tx.GasLimit)
		if err != nil {
			return Receipt{GasUsed: res.GasUsed, Err: errClass(err)}
		}
		if res.Reverted {
			return Receipt{GasUsed: res.GasUsed, Reverted: true, Ret: res.Ret}
		}
		return Receipt{OK: true, GasUsed: res.GasUsed, Ret: res.Ret}
	case TxBalance:
		// Side-effect-free: the receipt returns the raw big-endian balance
		// bytes of To — the same bytes the balance state key holds, so the
		// ordering path and the certified read path agree on the value.
		return Receipt{OK: true, Ret: l.state.GetBalance(tx.To).Bytes()}
	default:
		return Receipt{Err: "malformed"}
	}
}

// BalanceQuery encodes a TxBalance read of an account.
func BalanceQuery(addr Address) []byte {
	return Tx{Kind: TxBalance, To: addr}.Encode()
}

// ReadKey maps an encoded transaction to the state key a certified read
// serves (core.KeyReader): defined only for the side-effect-free
// TxBalance. The key is the ledger's balance slot for the queried
// account; a zero balance is stored as an absent key, which the verified
// bucket chunk authenticates as such.
func ReadKey(op []byte) (string, error) {
	tx, err := DecodeTx(op)
	if err != nil {
		return "", err
	}
	if tx.Kind != TxBalance {
		return "", fmt.Errorf("evm: tx kind %d is not a certified read", tx.Kind)
	}
	return addrKey("b", tx.To), nil
}

// ReadKey implements core.KeyReader for direct Ledger embedding.
func (l *Ledger) ReadKey(op []byte) (string, error) { return ReadKey(op) }

// errClass maps VM errors to deterministic receipt strings (error text must
// be identical across replicas; we never embed addresses or values).
func errClass(err error) string {
	switch {
	case errors.Is(err, ErrOutOfGas):
		return "out-of-gas"
	case errors.Is(err, ErrInsufficient):
		return "insufficient-balance"
	case errors.Is(err, ErrBadJump):
		return "bad-jump"
	case errors.Is(err, ErrInvalidOpcode):
		return "invalid-opcode"
	case errors.Is(err, ErrStackUnderflow), errors.Is(err, ErrStackOverflow):
		return "stack-fault"
	case errors.Is(err, ErrCallDepth):
		return "call-depth"
	case errors.Is(err, ErrMemoryLimit):
		return "memory-limit"
	case errors.Is(err, ErrCodeSize):
		return "code-size"
	default:
		return "vm-error"
	}
}

// ExecuteBlock applies a block of encoded transactions in order and
// returns encoded receipts, one per transaction.
func (l *Ledger) ExecuteBlock(seq uint64, ops [][]byte) [][]byte {
	results := make([][]byte, len(ops))
	for i, raw := range ops {
		mark := l.state.Snapshot()
		rcpt := l.applyTx(seq, raw)
		// Partition guard (partition.go): a transaction that touched a
		// foreign or locked account rolls back ENTIRELY — its admitted
		// writes are undone and an error receipt takes its slot, so sharded
		// replicas never apply a partial cross-partition effect.
		if verr := l.state.Violation(); verr != nil {
			l.state.RevertTo(mark)
			l.state.ClearViolation()
			rcpt = Receipt{Err: verr.Error()}
		}
		l.state.DiscardJournal()
		results[i] = rcpt.Encode()
	}
	kvRoot := l.stateMap.Digest()
	leaves := make([][]byte, len(ops))
	for i := range ops {
		leaves[i] = execLeaf(i, ops[i], results[i])
	}
	tree := merkle.NewTree(leaves)
	l.executed[seq] = &execRecord{tree: tree, kvRoot: kvRoot, ops: ops, results: results}
	l.lastSeq = seq
	l.digest = stateDigest(seq, kvRoot, tree.Root())
	return results
}

// Digest returns the state digest after the last executed block.
func (l *Ledger) Digest() []byte { return append([]byte(nil), l.digest...) }

// LastExecuted reports the last executed sequence number.
func (l *Ledger) LastExecuted() uint64 { return l.lastSeq }

// Proof mirrors kvstore.Proof for contract transactions.
type Proof struct {
	Seq    uint64
	L      int
	Op     []byte
	Val    []byte
	KVRoot merkle.Digest
	Path   merkle.Proof
}

// ProveOperation builds the proof for transaction l of block seq.
func (l *Ledger) ProveOperation(seq uint64, idx int) (Proof, error) {
	rec, ok := l.executed[seq]
	if !ok {
		return Proof{}, fmt.Errorf("%w: seq %d", ErrUnknownBlock, seq)
	}
	if idx < 0 || idx >= len(rec.ops) {
		return Proof{}, fmt.Errorf("evm: tx index %d out of range [0,%d)", idx, len(rec.ops))
	}
	path, err := rec.tree.Prove(idx)
	if err != nil {
		return Proof{}, err
	}
	return Proof{
		Seq: seq, L: idx,
		Op:     rec.ops[idx],
		Val:    rec.results[idx],
		KVRoot: rec.kvRoot,
		Path:   path,
	}, nil
}

// Verify is the client-side proof check against an f+1-signed digest.
func Verify(digest []byte, op, val []byte, seq uint64, idx int, p Proof) error {
	if p.Seq != seq || p.L != idx || p.Path.Index != idx {
		return fmt.Errorf("%w: binding mismatch", ErrBadProof)
	}
	if !bytes.Equal(p.Op, op) || !bytes.Equal(p.Val, val) {
		return fmt.Errorf("%w: op/result mismatch", ErrBadProof)
	}
	root := merkle.LeafHash(execLeaf(idx, op, val))
	for _, st := range p.Path.Steps {
		if st.Right {
			root = merkle.InteriorHash(root, st.Hash)
		} else {
			root = merkle.InteriorHash(st.Hash, root)
		}
	}
	if !bytes.Equal(stateDigest(seq, p.KVRoot, root), digest) {
		return fmt.Errorf("%w: digest mismatch", ErrBadProof)
	}
	return nil
}

// GarbageCollect drops execution records below keepFrom.
func (l *Ledger) GarbageCollect(keepFrom uint64) {
	for seq := range l.executed {
		if seq < keepFrom {
			delete(l.executed, seq)
		}
	}
}

// Snapshot serializes the ledger state for state transfer through the
// canonical snapcodec framing: replicas with identical state produce
// identical bytes in every process (gob could not promise that — its
// wire format embeds process-global type ids).
func (l *Ledger) Snapshot() ([]byte, error) {
	return snapcodec.Encode(snapcodec.FromMap(l.lastSeq, l.digest, l.stateMap.Snapshot())), nil
}

// SnapshotChunks is the incremental capture path: the bucketed canonical
// snapshot as a chunk list, re-encoding only buckets the write hook saw
// mutate since the previous capture.
func (l *Ledger) SnapshotChunks() ([][]byte, bool, error) {
	chunks, _ := l.tracker.EncodeChunks(l.lastSeq, l.digest)
	return chunks, true, nil
}

// Restore replaces the ledger state from a snapshot (either framing). A
// bucketed snapshot also seeds the tracker's encoding cache.
func (l *Ledger) Restore(data []byte) error {
	if snapcodec.IsBucketed(data) {
		snap, chunks, err := snapcodec.DecodeBucketed(data)
		if err != nil {
			return fmt.Errorf("evm: decoding snapshot: %w", err)
		}
		l.stateMap.Restore(snap.ToMap())
		l.state = NewMapState(l.stateMap)
		l.state.SetWriteHook(l.trackWrite)
		l.reinstallGuard()
		l.tracker.Restore(snap, len(chunks)-1, chunks)
		l.lastSeq = snap.LastSeq
		l.digest = snap.Digest
		l.executed = make(map[uint64]*execRecord)
		return nil
	}
	snap, err := snapcodec.Decode(data)
	if err != nil {
		return fmt.Errorf("evm: decoding snapshot: %w", err)
	}
	l.stateMap.Restore(snap.ToMap())
	l.state = NewMapState(l.stateMap)
	l.state.SetWriteHook(l.trackWrite)
	l.reinstallGuard()
	l.tracker = snapcodec.NewTracker(l.tracker.Buckets())
	for _, e := range snap.Entries {
		l.tracker.Set(e.Key, e.Val)
	}
	l.lastSeq = snap.LastSeq
	l.digest = snap.Digest
	l.executed = make(map[uint64]*execRecord)
	return nil
}

// Results returns retained receipts for an executed block.
func (l *Ledger) Results(seq uint64) ([][]byte, bool) {
	rec, ok := l.executed[seq]
	if !ok {
		return nil, false
	}
	return rec.results, true
}
