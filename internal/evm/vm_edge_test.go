package evm

import (
	"bytes"
	"errors"
	"math/big"
	"testing"

	"sbft/internal/merkle"
)

func TestByteOpcodeEdges(t *testing.T) {
	tests := []struct {
		name string
		i    uint64
		want uint64
	}{
		{"msb", 0, 0},     // most significant byte of 0xAB (32-byte value) is 0
		{"lsb", 31, 0xAB}, // least significant byte
		{"out of range", 32, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewAsm().Push(0xAB) // value
			a.Push(tt.i).Op(BYTE)    // BYTE(i, value)
			res := runCode(t, retTop(a), nil)
			wantWord(t, res.Ret, tt.want)
		})
	}
}

func TestSignExtend(t *testing.T) {
	// SIGNEXTEND(0, 0xFF) → -1 (sign bit of byte 0 set).
	a := NewAsm().Push(0xFF).Push(0).Op(SIGNEXTEND)
	res := runCode(t, retTop(a), nil)
	all := bytes.Repeat([]byte{0xFF}, 32)
	if !bytes.Equal(res.Ret, all) {
		t.Fatalf("SIGNEXTEND(0, 0xFF) = %x, want all-FF", res.Ret)
	}
	// SIGNEXTEND(0, 0x7F) → 0x7F (sign bit clear).
	b := NewAsm().Push(0x7F).Push(0).Op(SIGNEXTEND)
	res = runCode(t, retTop(b), nil)
	wantWord(t, res.Ret, 0x7F)
	// Out-of-range byte index leaves the value untouched.
	c := NewAsm().Push(0xABCD).Push(40).Op(SIGNEXTEND)
	res = runCode(t, retTop(c), nil)
	wantWord(t, res.Ret, 0xABCD)
}

func TestShiftBeyondWidth(t *testing.T) {
	a := NewAsm().Push(1).Push(256).Op(SHL) // shift ≥ 256 → 0
	res := runCode(t, retTop(a), nil)
	wantWord(t, res.Ret, 0)
	b := NewAsm().Push(1).Push(300).Op(SHR)
	res = runCode(t, retTop(b), nil)
	wantWord(t, res.Ret, 0)
}

func TestMemoryLimitEnforced(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	// MSTORE far beyond MaxMemory must fail, not allocate gigabytes.
	a := NewAsm()
	a.Push(1).PushBig(new(big.Int).Lsh(big.NewInt(1), 40)).Op(MSTORE)
	st.SetCode(self, a.MustBuild())
	_, err := vm.Call(addr(1), self, nil, nil, 100_000_000)
	if !errors.Is(err, ErrMemoryLimit) && !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err=%v, want memory limit or OOG", err)
	}
}

func TestGasAccountingMonotone(t *testing.T) {
	// A longer loop must consume more gas.
	run := func(n uint64) uint64 {
		vm, st := newTestVM()
		self := addr(0xCC)
		st.SetCode(self, ChurnRuntime())
		res, err := vm.Call(addr(1), self, nil, ChurnCalldata(n), 10_000_000)
		if err != nil || res.Reverted {
			t.Fatalf("churn(%d): %v", n, err)
		}
		return res.GasUsed
	}
	g4, g16 := run(4), run(16)
	if g16 <= g4 {
		t.Fatalf("gas not monotone: churn(16)=%d ≤ churn(4)=%d", g16, g4)
	}
}

func TestCreateInsideContract(t *testing.T) {
	vm, st := newTestVM()
	// A factory that CREATEs the churn contract (init code arrives as
	// calldata) and returns the new address.
	deploy := ChurnDeploy()
	f2 := NewAsm()
	f2.Op(CALLDATASIZE).Push(0).Push(0).Op(CALLDATACOPY) // mem[0:len] = calldata
	f2.Op(CALLDATASIZE).Push(0).Push(0).Op(CREATE)       // CREATE(value=0, off=0, size)
	code := retTop(f2)
	self := addr(0xFA)
	st.SetCode(self, code)
	res, err := vm.Call(addr(1), self, nil, deploy, 10_000_000)
	if err != nil || res.Reverted {
		t.Fatalf("factory call: %v reverted=%v", err, res.Reverted)
	}
	created := AddressFromBytes(res.Ret[12:32])
	if len(st.GetCode(created)) == 0 {
		t.Fatal("factory-created contract has no code")
	}
}

func TestRevertReturnsPayload(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	a := NewAsm()
	a.Push(0xDEAD).Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(REVERT)
	st.SetCode(self, a.MustBuild())
	res, err := vm.Call(addr(1), self, nil, nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reverted {
		t.Fatal("not reverted")
	}
	if new(big.Int).SetBytes(res.Ret).Uint64() != 0xDEAD {
		t.Fatalf("revert payload = %x", res.Ret)
	}
}

func TestMulmodLargeOperands(t *testing.T) {
	// MULMOD must compute over the full product, not the truncated one.
	big1 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	a := NewAsm()
	a.Push(7)       // modulus (pushed first, popped last)
	a.PushBig(big1) // b
	a.PushBig(big1) // a
	a.Op(MULMOD)
	res := runCode(t, retTop(a), nil)
	want := new(big.Int).Mul(big1, big1)
	want.Mod(want, big.NewInt(7))
	if new(big.Int).SetBytes(res.Ret).Cmp(want) != 0 {
		t.Fatalf("MULMOD = %x, want %v", res.Ret, want)
	}
}

func TestStateJournalRevertNested(t *testing.T) {
	st := NewMapState(merkle.NewMap())
	a1 := addr(0x01)
	st.SetBalance(a1, big.NewInt(100))
	outer := st.Snapshot()
	st.SetBalance(a1, big.NewInt(200))
	inner := st.Snapshot()
	st.SetBalance(a1, big.NewInt(300))
	st.SetStorage(a1, WordFromUint64(1), WordFromUint64(42))
	st.RevertTo(inner)
	if st.GetBalance(a1).Int64() != 200 {
		t.Fatalf("inner revert: balance %v", st.GetBalance(a1))
	}
	if st.GetStorage(a1, WordFromUint64(1)) != (Word{}) {
		t.Fatal("inner revert left storage")
	}
	st.RevertTo(outer)
	if st.GetBalance(a1).Int64() != 100 {
		t.Fatalf("outer revert: balance %v", st.GetBalance(a1))
	}
}
