package evm

import (
	"encoding/binary"
	"fmt"
	"math/big"
)

// Asm is a tiny assembler for building EVM bytecode in tests, examples and
// workload generators. It supports labels with back-patching so control
// flow reads naturally:
//
//	a := NewAsm()
//	a.Push(0).Push(1).Op(EQ).JumpI("done")
//	a.Push(0).Push(0).Op(REVERT)
//	a.Label("done").Op(STOP)
//	code := a.Build()
type Asm struct {
	buf     []byte
	labels  map[string]int
	patches []patch
	err     error
}

type patch struct {
	at    int // offset of the 2-byte push operand
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Op appends raw opcodes.
func (a *Asm) Op(ops ...Opcode) *Asm {
	for _, op := range ops {
		a.buf = append(a.buf, byte(op))
	}
	return a
}

// Push appends the shortest PUSH for v.
func (a *Asm) Push(v uint64) *Asm {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	i := 0
	for i < 7 && tmp[i] == 0 {
		i++
	}
	b := tmp[i:]
	a.buf = append(a.buf, byte(PUSH1)+byte(len(b)-1))
	a.buf = append(a.buf, b...)
	return a
}

// PushBig appends a PUSH of a big integer (up to 32 bytes).
func (a *Asm) PushBig(v *big.Int) *Asm {
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	if len(b) > 32 {
		a.err = fmt.Errorf("evm: push value exceeds 32 bytes")
		return a
	}
	a.buf = append(a.buf, byte(PUSH1)+byte(len(b)-1))
	a.buf = append(a.buf, b...)
	return a
}

// PushBytes appends a PUSH of up to 32 raw bytes.
func (a *Asm) PushBytes(b []byte) *Asm {
	if len(b) == 0 || len(b) > 32 {
		a.err = fmt.Errorf("evm: PushBytes length %d", len(b))
		return a
	}
	a.buf = append(a.buf, byte(PUSH1)+byte(len(b)-1))
	a.buf = append(a.buf, b...)
	return a
}

// Label defines a jump destination at the current position.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.err = fmt.Errorf("evm: duplicate label %q", name)
		return a
	}
	a.labels[name] = len(a.buf)
	a.buf = append(a.buf, byte(JUMPDEST))
	return a
}

// pushLabel emits PUSH2 with a placeholder to be patched.
func (a *Asm) pushLabel(name string) {
	a.buf = append(a.buf, byte(PUSH2))
	a.patches = append(a.patches, patch{at: len(a.buf), label: name})
	a.buf = append(a.buf, 0, 0)
}

// Jump emits an unconditional jump to a label.
func (a *Asm) Jump(name string) *Asm {
	a.pushLabel(name)
	a.buf = append(a.buf, byte(JUMP))
	return a
}

// JumpI emits a conditional jump to a label (consumes the condition already
// on the stack: stack layout cond → PUSH dest → JUMPI pops dest then cond).
func (a *Asm) JumpI(name string) *Asm {
	a.pushLabel(name)
	a.buf = append(a.buf, byte(JUMPI))
	return a
}

// Raw appends arbitrary bytes (e.g. embedded data).
func (a *Asm) Raw(b []byte) *Asm {
	a.buf = append(a.buf, b...)
	return a
}

// Build resolves labels and returns the bytecode.
func (a *Asm) Build() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	out := append([]byte(nil), a.buf...)
	for _, p := range a.patches {
		pos, ok := a.labels[p.label]
		if !ok {
			return nil, fmt.Errorf("evm: undefined label %q", p.label)
		}
		if pos > 0xffff {
			return nil, fmt.Errorf("evm: label %q offset %d exceeds PUSH2", p.label, pos)
		}
		binary.BigEndian.PutUint16(out[p.at:], uint16(pos))
	}
	return out, nil
}

// MustBuild is Build that panics on error; for tests and fixed contracts.
func (a *Asm) MustBuild() []byte {
	code, err := a.Build()
	if err != nil {
		panic(err)
	}
	return code
}

// DeployWrapper wraps runtime code in init code that returns it, the
// standard constructor pattern: CODECOPY the runtime tail and RETURN it.
func DeployWrapper(runtime []byte) []byte {
	a := NewAsm()
	// PUSH len, PUSH offset(placeholder resolved after we know header len),
	// PUSH 0, CODECOPY, PUSH len, PUSH 0, RETURN
	// Header layout is fixed: we compute its size by building twice.
	build := func(hdrLen int) []byte {
		b := NewAsm()
		b.Push(uint64(len(runtime))).Push(uint64(hdrLen)).Push(0).Op(CODECOPY)
		b.Push(uint64(len(runtime))).Push(0).Op(RETURN)
		code := b.MustBuild()
		return code
	}
	hdr := build(0)
	hdr = build(len(hdr))
	// Size may change if the offset crossed a PUSH width boundary; iterate
	// once more to fix point.
	hdr = build(len(hdr))
	a.Raw(hdr).Raw(runtime)
	return a.MustBuild()
}
