package evm

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// addrOnShard finds an address routing to shard among k groups.
func addrOnShard(t *testing.T, shard, shards int, salt byte) Address {
	t.Helper()
	for i := 0; i < 10000; i++ {
		var a Address
		a[0] = salt
		binary.BigEndian.PutUint32(a[16:], uint32(i))
		if RouteAccount(a, shards) == shard {
			return a
		}
	}
	t.Fatalf("no address routes to shard %d/%d", shard, shards)
	return Address{}
}

func execTx(l *Ledger, tx Tx) Receipt {
	res := l.ExecuteBlock(l.LastExecuted()+1, [][]byte{tx.Encode()})
	r, err := DecodeReceipt(res[0])
	if err != nil {
		panic(err)
	}
	return r
}

func TestPartitionRefusesForeignWrites(t *testing.T) {
	mine := addrOnShard(t, 0, 2, 1)
	mine2 := addrOnShard(t, 0, 2, 2)
	foreign := addrOnShard(t, 1, 2, 3)

	l := NewLedger()
	l.Mint(mine, 1000)
	l.Partition(0, 2)

	// Transfer inside the partition: fine.
	r := execTx(l, Tx{Kind: TxCall, From: mine, To: mine2, Value: 100, GasLimit: 100000})
	if !r.OK {
		t.Fatalf("local transfer failed: %+v", r)
	}
	// Transfer crossing the partition: whole-transaction rollback with a
	// deterministic receipt — including the sender debit.
	before := l.Balance(mine).Uint64()
	r = execTx(l, Tx{Kind: TxCall, From: mine, To: foreign, Value: 100, GasLimit: 100000})
	if r.OK || r.Err != ErrClassWrongShard {
		t.Fatalf("cross-partition transfer: %+v, want Err=%q", r, ErrClassWrongShard)
	}
	if got := l.Balance(mine).Uint64(); got != before {
		t.Fatalf("sender debit not rolled back: %d, want %d", got, before)
	}
	if got := l.Balance(foreign).Uint64(); got != 0 {
		t.Fatalf("foreign account credited: %d", got)
	}
}

func TestLockedAccountParksWrites(t *testing.T) {
	a := addrOnShard(t, 0, 1, 1)
	b := addrOnShard(t, 0, 1, 2)
	l := NewLedger()
	l.Mint(a, 1000)
	l.LockAccount(b)

	r := execTx(l, Tx{Kind: TxCall, From: a, To: b, Value: 50, GasLimit: 100000})
	if r.OK || r.Err != ErrClassLocked {
		t.Fatalf("transfer to locked account: %+v, want Err=%q", r, ErrClassLocked)
	}
	if got := l.Balance(a).Uint64(); got != 1000 {
		t.Fatalf("debit not rolled back: %d", got)
	}
	l.UnlockAccount(b)
	if r := execTx(l, Tx{Kind: TxCall, From: a, To: b, Value: 50, GasLimit: 100000}); !r.OK {
		t.Fatalf("transfer after unlock failed: %+v", r)
	}
	if got := l.Balance(b).Uint64(); got != 50 {
		t.Fatalf("credit missing after unlock: %d", got)
	}
}

func TestPartitionDeterministicDigests(t *testing.T) {
	mine := addrOnShard(t, 0, 2, 1)
	foreign := addrOnShard(t, 1, 2, 3)
	run := func() *Ledger {
		l := NewLedger()
		l.Mint(mine, 1000)
		l.Partition(0, 2)
		execTx(l, Tx{Kind: TxCall, From: mine, To: foreign, Value: 10, GasLimit: 100000})
		execTx(l, Tx{Kind: TxBalance, To: mine})
		return l
	}
	a, b := run(), run()
	if !bytes.Equal(a.Digest(), b.Digest()) {
		t.Fatal("partitioned execution not deterministic")
	}
}

func TestPartitionSurvivesRestore(t *testing.T) {
	mine := addrOnShard(t, 0, 2, 1)
	foreign := addrOnShard(t, 1, 2, 3)
	l := NewLedger()
	l.Mint(mine, 1000)
	l.Partition(0, 2)

	snap, err := l.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r := NewLedger()
	r.Partition(0, 2)
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rc := execTx(r, Tx{Kind: TxCall, From: mine, To: foreign, Value: 10, GasLimit: 100000})
	if rc.OK || rc.Err != ErrClassWrongShard {
		t.Fatalf("guard lost across restore: %+v", rc)
	}
}

func TestAccountToken(t *testing.T) {
	cases := map[string]string{
		"b/abcd":         "abcd",
		"n/abcd":         "abcd",
		"c/abcd":         "abcd",
		"s/abcd/0011":    "abcd",
		"noslash":        "noslash",
		"s/abcd/00/deep": "abcd",
	}
	for key, want := range cases {
		if got := AccountToken(key); got != want {
			t.Errorf("AccountToken(%q) = %q, want %q", key, got, want)
		}
	}
}
