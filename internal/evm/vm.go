package evm

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Execution limits and the simplified gas schedule.
const (
	StackLimit    = 1024
	MaxCallDepth  = 64
	MaxCodeSize   = 1 << 16
	MaxMemory     = 1 << 22 // 4 MiB per frame
	gasBase       = 1
	gasArith      = 3
	gasExpPerByte = 10
	gasHashWord   = 6
	gasSLoad      = 50
	gasSStore     = 200
	gasMemWord    = 1
	gasCall       = 300
	gasCreate     = 800
	gasLogBase    = 100
)

// VM errors. ErrRevert carries the revert payload via ExecResult instead.
var (
	ErrOutOfGas       = errors.New("evm: out of gas")
	ErrStackUnderflow = errors.New("evm: stack underflow")
	ErrStackOverflow  = errors.New("evm: stack overflow")
	ErrBadJump        = errors.New("evm: jump to invalid destination")
	ErrInvalidOpcode  = errors.New("evm: invalid opcode")
	ErrCallDepth      = errors.New("evm: call depth exceeded")
	ErrMemoryLimit    = errors.New("evm: memory limit exceeded")
	ErrCodeSize       = errors.New("evm: code size limit exceeded")
	ErrInsufficient   = errors.New("evm: insufficient balance")
)

// Log is an emitted event.
type Log struct {
	Address Address
	Topics  []Word
	Data    []byte
}

// Context carries per-transaction environment values.
type Context struct {
	BlockNum  uint64
	Timestamp uint64
	GasLimit  uint64
}

// ExecResult is the outcome of running a frame.
type ExecResult struct {
	Ret      []byte
	GasUsed  uint64
	Reverted bool
	Logs     []Log
}

// VM executes EVM bytecode frames against a State.
type VM struct {
	state State
	ctx   Context
	depth int
	logs  []Log
}

// NewVM builds a VM over state with the given context.
func NewVM(state State, ctx Context) *VM {
	return &VM{state: state, ctx: ctx}
}

type frame struct {
	code   []byte
	caller Address
	self   Address
	value  *big.Int
	input  []byte
	gas    uint64
	stack  []*big.Int
	mem    []byte
	pc     int
	jumpOK map[int]bool
	vm     *VM
}

func validJumpDests(code []byte) map[int]bool {
	dests := make(map[int]bool)
	for i := 0; i < len(code); i++ {
		op := Opcode(code[i])
		if op == JUMPDEST {
			dests[i] = true
		}
		if op >= PUSH1 && op <= PUSH32 {
			i += int(op-PUSH1) + 1
		}
	}
	return dests
}

// Call runs the code at 'to' with the given input, transferring value from
// caller. It is the entry point for contract-execution transactions.
func (vm *VM) Call(caller, to Address, value *big.Int, input []byte, gas uint64) (ExecResult, error) {
	if vm.depth >= MaxCallDepth {
		return ExecResult{}, ErrCallDepth
	}
	snap := vm.state.Snapshot()
	logMark := len(vm.logs)
	if err := vm.transfer(caller, to, value); err != nil {
		return ExecResult{}, err
	}
	code := vm.state.GetCode(to)
	if len(code) == 0 {
		// Plain value transfer.
		return ExecResult{GasUsed: gasBase, Logs: nil}, nil
	}
	res, err := vm.run(caller, to, value, input, code, gas)
	if err != nil || res.Reverted {
		vm.state.RevertTo(snap)
		vm.logs = vm.logs[:logMark]
	}
	res.Logs = append([]Log(nil), vm.logs[logMark:]...)
	return res, err
}

// Create deploys a contract: runs initCode and installs its return value
// as the contract body. It is the entry point for creation transactions.
func (vm *VM) Create(caller Address, value *big.Int, initCode []byte, gas uint64) (Address, ExecResult, error) {
	if vm.depth >= MaxCallDepth {
		return Address{}, ExecResult{}, ErrCallDepth
	}
	nonce := vm.state.GetNonce(caller)
	addr := ContractAddress(caller, nonce)
	vm.state.SetNonce(caller, nonce+1)

	snap := vm.state.Snapshot()
	logMark := len(vm.logs)
	if err := vm.transfer(caller, addr, value); err != nil {
		return Address{}, ExecResult{}, err
	}
	res, err := vm.run(caller, addr, value, nil, initCode, gas)
	if err == nil && !res.Reverted {
		if len(res.Ret) > MaxCodeSize {
			err = ErrCodeSize
		} else {
			vm.state.SetCode(addr, res.Ret)
		}
	}
	if err != nil || res.Reverted {
		vm.state.RevertTo(snap)
		vm.logs = vm.logs[:logMark]
		return Address{}, res, err
	}
	res.Logs = append([]Log(nil), vm.logs[logMark:]...)
	return addr, res, nil
}

func (vm *VM) transfer(from, to Address, value *big.Int) error {
	if value == nil || value.Sign() == 0 {
		return nil
	}
	fb := vm.state.GetBalance(from)
	if fb.Cmp(value) < 0 {
		return fmt.Errorf("%w: have %v, need %v", ErrInsufficient, fb, value)
	}
	vm.state.SetBalance(from, new(big.Int).Sub(fb, value))
	vm.state.SetBalance(to, new(big.Int).Add(vm.state.GetBalance(to), value))
	return nil
}

// run executes one frame to completion.
func (vm *VM) run(caller, self Address, value *big.Int, input, code []byte, gas uint64) (ExecResult, error) {
	vm.depth++
	defer func() { vm.depth-- }()
	if value == nil {
		value = new(big.Int)
	}
	f := &frame{
		code:   code,
		caller: caller,
		self:   self,
		value:  value,
		input:  input,
		gas:    gas,
		jumpOK: validJumpDests(code),
		vm:     vm,
	}
	ret, reverted, err := f.loop()
	used := gas - f.gas
	if err != nil {
		return ExecResult{GasUsed: used}, err
	}
	return ExecResult{Ret: ret, GasUsed: used, Reverted: reverted}, nil
}

func (f *frame) use(g uint64) error {
	if f.gas < g {
		f.gas = 0
		return ErrOutOfGas
	}
	f.gas -= g
	return nil
}

func (f *frame) push(v *big.Int) error {
	if len(f.stack) >= StackLimit {
		return ErrStackOverflow
	}
	f.stack = append(f.stack, v)
	return nil
}

func (f *frame) pop() (*big.Int, error) {
	if len(f.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v, nil
}

func (f *frame) popN(n int) ([]*big.Int, error) {
	if len(f.stack) < n {
		return nil, ErrStackUnderflow
	}
	out := make([]*big.Int, n)
	for i := 0; i < n; i++ {
		out[i] = f.stack[len(f.stack)-1-i]
	}
	f.stack = f.stack[:len(f.stack)-n]
	return out, nil
}

// memExpand grows memory to cover [off, off+size) and charges gas.
func (f *frame) memExpand(off, size uint64) error {
	if size == 0 {
		return nil
	}
	end := off + size
	if end < off || end > MaxMemory {
		return ErrMemoryLimit
	}
	if uint64(len(f.mem)) >= end {
		return nil
	}
	// Round to 32-byte words.
	newLen := (end + 31) / 32 * 32
	words := (newLen - uint64(len(f.mem))) / 32
	if err := f.use(words * gasMemWord); err != nil {
		return err
	}
	grown := make([]byte, newLen)
	copy(grown, f.mem)
	f.mem = grown
	return nil
}

func u64(v *big.Int) (uint64, bool) {
	if !v.IsUint64() {
		return 0, false
	}
	return v.Uint64(), true
}

// loop interprets the frame's code. It returns the return payload and
// whether the frame reverted.
func (f *frame) loop() (ret []byte, reverted bool, err error) {
	for f.pc < len(f.code) {
		op := Opcode(f.code[f.pc])
		switch {
		case op >= PUSH1 && op <= PUSH32:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			n := int(op-PUSH1) + 1
			end := f.pc + 1 + n
			if end > len(f.code) {
				end = len(f.code)
			}
			v := new(big.Int).SetBytes(f.code[f.pc+1 : end])
			if err := f.push(v); err != nil {
				return nil, false, err
			}
			f.pc += n + 1
			continue
		case op >= DUP1 && op <= DUP16:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			n := int(op-DUP1) + 1
			if len(f.stack) < n {
				return nil, false, ErrStackUnderflow
			}
			if err := f.push(new(big.Int).Set(f.stack[len(f.stack)-n])); err != nil {
				return nil, false, err
			}
			f.pc++
			continue
		case op >= SWAP1 && op <= SWAP16:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			n := int(op-SWAP1) + 1
			if len(f.stack) < n+1 {
				return nil, false, ErrStackUnderflow
			}
			top := len(f.stack) - 1
			f.stack[top], f.stack[top-n] = f.stack[top-n], f.stack[top]
			f.pc++
			continue
		case op >= LOG0 && op <= LOG4:
			if err := f.opLog(int(op - LOG0)); err != nil {
				return nil, false, err
			}
			f.pc++
			continue
		}

		switch op {
		case STOP:
			return nil, false, nil
		case ADD, MUL, SUB, DIV, SDIV, MOD, SMOD, AND, OR, XOR, LT, GT, SLT, SGT, EQ, BYTE, SHL, SHR:
			if err := f.binop(op); err != nil {
				return nil, false, err
			}
		case ADDMOD, MULMOD:
			if err := f.ternop(op); err != nil {
				return nil, false, err
			}
		case EXP:
			if err := f.opExp(); err != nil {
				return nil, false, err
			}
		case SIGNEXTEND:
			if err := f.opSignExtend(); err != nil {
				return nil, false, err
			}
		case ISZERO, NOT:
			if err := f.unop(op); err != nil {
				return nil, false, err
			}
		case SHA3:
			if err := f.opSha3(); err != nil {
				return nil, false, err
			}
		case ADDRESS:
			if err := f.pushBytes(f.self[:]); err != nil {
				return nil, false, err
			}
		case CALLER:
			if err := f.pushBytes(f.caller[:]); err != nil {
				return nil, false, err
			}
		case CALLVALUE:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(new(big.Int).Set(f.value)); err != nil {
				return nil, false, err
			}
		case BALANCE:
			if err := f.opBalance(); err != nil {
				return nil, false, err
			}
		case CALLDATALOAD:
			if err := f.opCallDataLoad(); err != nil {
				return nil, false, err
			}
		case CALLDATASIZE:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(big.NewInt(int64(len(f.input)))); err != nil {
				return nil, false, err
			}
		case CALLDATACOPY:
			if err := f.opCallDataCopy(); err != nil {
				return nil, false, err
			}
		case CODESIZE:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(big.NewInt(int64(len(f.code)))); err != nil {
				return nil, false, err
			}
		case CODECOPY:
			if err := f.opCodeCopy(); err != nil {
				return nil, false, err
			}
		case BLOCKNUM:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(new(big.Int).SetUint64(f.vm.ctx.BlockNum)); err != nil {
				return nil, false, err
			}
		case TIMESTAMP:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(new(big.Int).SetUint64(f.vm.ctx.Timestamp)); err != nil {
				return nil, false, err
			}
		case POP:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if _, err := f.pop(); err != nil {
				return nil, false, err
			}
		case MLOAD:
			if err := f.opMLoad(); err != nil {
				return nil, false, err
			}
		case MSTORE:
			if err := f.opMStore(); err != nil {
				return nil, false, err
			}
		case MSTORE8:
			if err := f.opMStore8(); err != nil {
				return nil, false, err
			}
		case SLOAD:
			if err := f.opSLoad(); err != nil {
				return nil, false, err
			}
		case SSTORE:
			if err := f.opSStore(); err != nil {
				return nil, false, err
			}
		case JUMP:
			dst, err := f.pop()
			if err != nil {
				return nil, false, err
			}
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			d, ok := u64(dst)
			if !ok || !f.jumpOK[int(d)] {
				return nil, false, fmt.Errorf("%w: %v", ErrBadJump, dst)
			}
			f.pc = int(d)
			continue
		case JUMPI:
			args, err := f.popN(2)
			if err != nil {
				return nil, false, err
			}
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if args[1].Sign() != 0 {
				d, ok := u64(args[0])
				if !ok || !f.jumpOK[int(d)] {
					return nil, false, fmt.Errorf("%w: %v", ErrBadJump, args[0])
				}
				f.pc = int(d)
				continue
			}
		case PC:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(big.NewInt(int64(f.pc))); err != nil {
				return nil, false, err
			}
		case MSIZE:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(big.NewInt(int64(len(f.mem)))); err != nil {
				return nil, false, err
			}
		case GAS:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
			if err := f.push(new(big.Int).SetUint64(f.gas)); err != nil {
				return nil, false, err
			}
		case JUMPDEST:
			if err := f.use(gasBase); err != nil {
				return nil, false, err
			}
		case CREATE:
			if err := f.opCreate(); err != nil {
				return nil, false, err
			}
		case CALL:
			if err := f.opCall(); err != nil {
				return nil, false, err
			}
		case RETURN:
			data, err := f.returnData()
			return data, false, err
		case REVERT:
			data, err := f.returnData()
			return data, true, err
		default:
			return nil, false, fmt.Errorf("%w: 0x%02x at pc %d", ErrInvalidOpcode, byte(op), f.pc)
		}
		f.pc++
	}
	return nil, false, nil
}

func (f *frame) pushBytes(b []byte) error {
	if err := f.use(gasBase); err != nil {
		return err
	}
	return f.push(new(big.Int).SetBytes(b))
}

func (f *frame) returnData() ([]byte, error) {
	args, err := f.popN(2)
	if err != nil {
		return nil, err
	}
	off, ok1 := u64(args[0])
	size, ok2 := u64(args[1])
	if !ok1 || !ok2 {
		return nil, ErrMemoryLimit
	}
	if err := f.memExpand(off, size); err != nil {
		return nil, err
	}
	return append([]byte(nil), f.mem[off:off+size]...), nil
}

func mod256(v *big.Int) *big.Int { return v.And(v, u256Mask) }

// toSigned interprets v as a two's-complement 256-bit value.
func toSigned(v *big.Int) *big.Int {
	if v.Bit(255) == 1 {
		return new(big.Int).Sub(v, new(big.Int).Lsh(big.NewInt(1), 256))
	}
	return new(big.Int).Set(v)
}

func (f *frame) binop(op Opcode) error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	a, b := args[0], args[1]
	r := new(big.Int)
	switch op {
	case ADD:
		r.Add(a, b)
	case MUL:
		r.Mul(a, b)
	case SUB:
		r.Sub(a, b)
	case DIV:
		if b.Sign() != 0 {
			r.Div(a, b)
		}
	case SDIV:
		sa, sb := toSigned(a), toSigned(b)
		if sb.Sign() != 0 {
			r.Quo(sa, sb)
		}
	case MOD:
		if b.Sign() != 0 {
			r.Mod(a, b)
		}
	case SMOD:
		sa, sb := toSigned(a), toSigned(b)
		if sb.Sign() != 0 {
			r.Rem(sa, sb)
		}
	case AND:
		r.And(a, b)
	case OR:
		r.Or(a, b)
	case XOR:
		r.Xor(a, b)
	case LT:
		if a.Cmp(b) < 0 {
			r.SetInt64(1)
		}
	case GT:
		if a.Cmp(b) > 0 {
			r.SetInt64(1)
		}
	case SLT:
		if toSigned(a).Cmp(toSigned(b)) < 0 {
			r.SetInt64(1)
		}
	case SGT:
		if toSigned(a).Cmp(toSigned(b)) > 0 {
			r.SetInt64(1)
		}
	case EQ:
		if a.Cmp(b) == 0 {
			r.SetInt64(1)
		}
	case BYTE:
		if i, ok := u64(a); ok && i < 32 {
			w := WordFromBig(b)
			r.SetInt64(int64(w[i]))
		}
	case SHL:
		if s, ok := u64(a); ok && s < 256 {
			r.Lsh(b, uint(s))
		}
	case SHR:
		if s, ok := u64(a); ok && s < 256 {
			r.Rsh(b, uint(s))
		}
	}
	return f.push(mod256(r))
}

func (f *frame) ternop(op Opcode) error {
	if err := f.use(gasArith * 2); err != nil {
		return err
	}
	args, err := f.popN(3)
	if err != nil {
		return err
	}
	a, b, n := args[0], args[1], args[2]
	r := new(big.Int)
	if n.Sign() != 0 {
		switch op {
		case ADDMOD:
			r.Add(a, b)
		case MULMOD:
			r.Mul(a, b)
		}
		r.Mod(r, n)
	}
	return f.push(mod256(r))
}

func (f *frame) opExp() error {
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	base, exp := args[0], args[1]
	cost := uint64(gasArith) + uint64(len(exp.Bytes()))*gasExpPerByte
	if err := f.use(cost); err != nil {
		return err
	}
	mod := new(big.Int).Lsh(big.NewInt(1), 256)
	return f.push(new(big.Int).Exp(base, exp, mod))
}

func (f *frame) opSignExtend() error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	k, v := args[0], args[1]
	if i, ok := u64(k); ok && i < 31 {
		bit := uint(i*8 + 7)
		mask := new(big.Int).Lsh(big.NewInt(1), bit+1)
		mask.Sub(mask, big.NewInt(1))
		if v.Bit(int(bit)) == 1 {
			r := new(big.Int).Or(v, new(big.Int).Xor(u256Mask, mask))
			return f.push(mod256(r))
		}
		return f.push(new(big.Int).And(v, mask))
	}
	return f.push(v)
}

func (f *frame) opSha3() error {
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	off, ok1 := u64(args[0])
	size, ok2 := u64(args[1])
	if !ok1 || !ok2 {
		return ErrMemoryLimit
	}
	if err := f.use(uint64(gasArith) + (size+31)/32*gasHashWord); err != nil {
		return err
	}
	if err := f.memExpand(off, size); err != nil {
		return err
	}
	sum := sha256.Sum256(f.mem[off : off+size])
	return f.push(new(big.Int).SetBytes(sum[:]))
}

func (f *frame) unop(op Opcode) error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	a, err := f.pop()
	if err != nil {
		return err
	}
	r := new(big.Int)
	switch op {
	case ISZERO:
		if a.Sign() == 0 {
			r.SetInt64(1)
		}
	case NOT:
		r.Xor(a, u256Mask)
	}
	return f.push(mod256(r))
}

func (f *frame) opBalance() error {
	if err := f.use(gasSLoad); err != nil {
		return err
	}
	a, err := f.pop()
	if err != nil {
		return err
	}
	addr := AddressFromBytes(WordFromBig(a).bytesRef())
	return f.push(f.vm.state.GetBalance(addr))
}

func (w Word) bytesRef() []byte { return w[:] }

func (f *frame) opCallDataLoad() error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	offB, err := f.pop()
	if err != nil {
		return err
	}
	var w Word
	if off, ok := u64(offB); ok {
		for i := 0; i < 32; i++ {
			pos := off + uint64(i)
			if pos < uint64(len(f.input)) {
				w[i] = f.input[pos]
			}
		}
	}
	return f.push(w.Big())
}

func (f *frame) opCallDataCopy() error { return f.copyOp(f.input) }
func (f *frame) opCodeCopy() error     { return f.copyOp(f.code) }

func (f *frame) copyOp(src []byte) error {
	args, err := f.popN(3)
	if err != nil {
		return err
	}
	memOff, ok1 := u64(args[0])
	srcOff, ok2 := u64(args[1])
	size, ok3 := u64(args[2])
	if !ok1 || !ok2 || !ok3 {
		return ErrMemoryLimit
	}
	if err := f.use(uint64(gasArith) + (size+31)/32*gasMemWord); err != nil {
		return err
	}
	if err := f.memExpand(memOff, size); err != nil {
		return err
	}
	for i := uint64(0); i < size; i++ {
		var b byte
		if srcOff+i < uint64(len(src)) {
			b = src[srcOff+i]
		}
		f.mem[memOff+i] = b
	}
	return nil
}

func (f *frame) opMLoad() error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	offB, err := f.pop()
	if err != nil {
		return err
	}
	off, ok := u64(offB)
	if !ok {
		return ErrMemoryLimit
	}
	if err := f.memExpand(off, 32); err != nil {
		return err
	}
	return f.push(new(big.Int).SetBytes(f.mem[off : off+32]))
}

func (f *frame) opMStore() error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	off, ok := u64(args[0])
	if !ok {
		return ErrMemoryLimit
	}
	if err := f.memExpand(off, 32); err != nil {
		return err
	}
	w := WordFromBig(args[1])
	copy(f.mem[off:off+32], w[:])
	return nil
}

func (f *frame) opMStore8() error {
	if err := f.use(gasArith); err != nil {
		return err
	}
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	off, ok := u64(args[0])
	if !ok {
		return ErrMemoryLimit
	}
	if err := f.memExpand(off, 1); err != nil {
		return err
	}
	f.mem[off] = byte(args[1].Uint64() & 0xff)
	return nil
}

func (f *frame) opSLoad() error {
	if err := f.use(gasSLoad); err != nil {
		return err
	}
	k, err := f.pop()
	if err != nil {
		return err
	}
	v := f.vm.state.GetStorage(f.self, WordFromBig(k))
	return f.push(v.Big())
}

func (f *frame) opSStore() error {
	if err := f.use(gasSStore); err != nil {
		return err
	}
	args, err := f.popN(2)
	if err != nil {
		return err
	}
	f.vm.state.SetStorage(f.self, WordFromBig(args[0]), WordFromBig(args[1]))
	return nil
}

func (f *frame) opLog(topics int) error {
	args, err := f.popN(2 + topics)
	if err != nil {
		return err
	}
	off, ok1 := u64(args[0])
	size, ok2 := u64(args[1])
	if !ok1 || !ok2 {
		return ErrMemoryLimit
	}
	if err := f.use(uint64(gasLogBase) + (size+31)/32*gasMemWord); err != nil {
		return err
	}
	if err := f.memExpand(off, size); err != nil {
		return err
	}
	log := Log{Address: f.self, Data: append([]byte(nil), f.mem[off:off+size]...)}
	for i := 0; i < topics; i++ {
		log.Topics = append(log.Topics, WordFromBig(args[2+i]))
	}
	f.vm.logs = append(f.vm.logs, log)
	return nil
}

func (f *frame) opCreate() error {
	if err := f.use(gasCreate); err != nil {
		return err
	}
	args, err := f.popN(3)
	if err != nil {
		return err
	}
	value := args[0]
	off, ok1 := u64(args[1])
	size, ok2 := u64(args[2])
	if !ok1 || !ok2 {
		return ErrMemoryLimit
	}
	if err := f.memExpand(off, size); err != nil {
		return err
	}
	initCode := append([]byte(nil), f.mem[off:off+size]...)
	gasForChild := f.gas - f.gas/64
	addr, res, err := f.vm.Create(f.self, value, initCode, gasForChild)
	f.gas -= min64(res.GasUsed, gasForChild)
	if err != nil || res.Reverted {
		return f.push(new(big.Int))
	}
	return f.push(new(big.Int).SetBytes(addr[:]))
}

func (f *frame) opCall() error {
	if err := f.use(gasCall); err != nil {
		return err
	}
	// gas, to, value, inOff, inSize, outOff, outSize
	args, err := f.popN(7)
	if err != nil {
		return err
	}
	gasReq, _ := u64(args[0])
	to := AddressFromBytes(WordFromBig(args[1]).bytesRef())
	value := args[2]
	inOff, ok1 := u64(args[3])
	inSize, ok2 := u64(args[4])
	outOff, ok3 := u64(args[5])
	outSize, ok4 := u64(args[6])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return ErrMemoryLimit
	}
	if err := f.memExpand(inOff, inSize); err != nil {
		return err
	}
	if err := f.memExpand(outOff, outSize); err != nil {
		return err
	}
	avail := f.gas - f.gas/64
	if gasReq == 0 || gasReq > avail {
		gasReq = avail
	}
	input := append([]byte(nil), f.mem[inOff:inOff+inSize]...)
	res, err := f.vm.Call(f.self, to, value, input, gasReq)
	f.gas -= min64(res.GasUsed, gasReq)
	ok := err == nil && !res.Reverted
	if ok && outSize > 0 {
		copy(f.mem[outOff:outOff+outSize], res.Ret)
	}
	r := new(big.Int)
	if ok {
		r.SetInt64(1)
	}
	return f.push(r)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
