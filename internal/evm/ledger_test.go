package evm

import (
	"bytes"
	"errors"
	"testing"
)

func deployTokenTx(from Address) []byte {
	return Tx{Kind: TxCreate, From: from, GasLimit: 1_000_000, Data: TokenDeploy()}.Encode()
}

func TestTxCodecRoundTrip(t *testing.T) {
	tx := Tx{
		Kind:     TxCall,
		From:     addr(0x11),
		To:       addr(0x22),
		Value:    77,
		GasLimit: 50_000,
		Data:     []byte{1, 2, 3},
	}
	got, err := DecodeTx(tx.Encode())
	if err != nil {
		t.Fatalf("DecodeTx: %v", err)
	}
	if got.Kind != tx.Kind || got.From != tx.From || got.To != tx.To ||
		got.Value != tx.Value || got.GasLimit != tx.GasLimit || !bytes.Equal(got.Data, tx.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDecodeTxRejectsMalformed(t *testing.T) {
	valid := deployTokenTx(addr(1))
	tests := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", valid[:10]},
		{"bad kind", append([]byte{9}, valid[1:]...)},
		{"truncated data", valid[:len(valid)-1]},
		{"extended data", append(append([]byte{}, valid...), 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeTx(tt.data); !errors.Is(err, ErrBadTx) {
				t.Fatalf("err=%v, want ErrBadTx", err)
			}
		})
	}
}

func TestReceiptCodecRoundTrip(t *testing.T) {
	r := Receipt{OK: true, GasUsed: 1234, Ret: []byte{9, 9}, Created: addr(0xEE)}
	got, err := DecodeReceipt(r.Encode())
	if err != nil {
		t.Fatalf("DecodeReceipt: %v", err)
	}
	if !got.OK || got.GasUsed != 1234 || !bytes.Equal(got.Ret, r.Ret) || got.Created != r.Created {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeReceipt([]byte("junk")); err == nil {
		t.Fatal("DecodeReceipt accepted junk")
	}
}

func TestLedgerCreateThenCall(t *testing.T) {
	l := NewLedger()
	deployer, alice, bob := addr(0xD0), addr(0xA1), addr(0xB2)
	l.Mint(deployer, 1_000_000)

	res := l.ExecuteBlock(1, [][]byte{deployTokenTx(deployer)})
	rcpt, err := DecodeReceipt(res[0])
	if err != nil || !rcpt.OK {
		t.Fatalf("deploy receipt: %+v, %v", rcpt, err)
	}
	token := rcpt.Created

	mint := Tx{Kind: TxCall, From: alice, To: token, GasLimit: 1_000_000,
		Data: TokenCalldata(TokenMint, alice, 500)}.Encode()
	transfer := Tx{Kind: TxCall, From: alice, To: token, GasLimit: 1_000_000,
		Data: TokenCalldata(TokenTransfer, bob, 123)}.Encode()
	res = l.ExecuteBlock(2, [][]byte{mint, transfer})
	for i, r := range res {
		rcpt, err := DecodeReceipt(r)
		if err != nil || !rcpt.OK {
			t.Fatalf("tx %d receipt: %+v, %v", i, rcpt, err)
		}
	}
	var bobKey Word
	copy(bobKey[32-AddressSize:], bob[:])
	if got := l.Storage(token, bobKey); got != WordFromUint64(123) {
		t.Fatalf("bob token balance slot = %x, want 123", got)
	}
}

func TestLedgerDeterminism(t *testing.T) {
	build := func() *Ledger {
		l := NewLedger()
		l.Mint(addr(0xD0), 1_000_000)
		return l
	}
	a, b := build(), build()
	blocks := [][][]byte{
		{deployTokenTx(addr(0xD0))},
		{Tx{Kind: TxCall, From: addr(1), To: ContractAddress(addr(0xD0), 0), GasLimit: 1_000_000,
			Data: TokenCalldata(TokenMint, addr(1), 10)}.Encode()},
	}
	for i, blk := range blocks {
		ra := a.ExecuteBlock(uint64(i+1), blk)
		rb := b.ExecuteBlock(uint64(i+1), blk)
		for j := range ra {
			if !bytes.Equal(ra[j], rb[j]) {
				t.Fatalf("block %d tx %d receipts diverge", i+1, j)
			}
		}
		if !bytes.Equal(a.Digest(), b.Digest()) {
			t.Fatalf("digests diverge after block %d", i+1)
		}
	}
}

func TestLedgerFailedTxRollsBackButAdvances(t *testing.T) {
	l := NewLedger()
	// Transfer from an account with no balance: VM error, receipt records
	// the deterministic error class, block still executes.
	badTx := Tx{Kind: TxCall, From: addr(0x01), To: addr(0x02), Value: 999,
		GasLimit: 100_000}.Encode()
	res := l.ExecuteBlock(1, [][]byte{badTx})
	rcpt, err := DecodeReceipt(res[0])
	if err != nil {
		t.Fatalf("DecodeReceipt: %v", err)
	}
	if rcpt.OK || rcpt.Err != "insufficient-balance" {
		t.Fatalf("receipt = %+v, want insufficient-balance", rcpt)
	}
	if l.LastExecuted() != 1 {
		t.Fatalf("LastExecuted = %d, want 1", l.LastExecuted())
	}
}

func TestLedgerMalformedTx(t *testing.T) {
	l := NewLedger()
	res := l.ExecuteBlock(1, [][]byte{{0xFF, 0xFF}})
	rcpt, err := DecodeReceipt(res[0])
	if err != nil {
		t.Fatalf("DecodeReceipt: %v", err)
	}
	if rcpt.OK || rcpt.Err != "malformed" {
		t.Fatalf("receipt = %+v, want malformed", rcpt)
	}
}

func TestLedgerProofs(t *testing.T) {
	l := NewLedger()
	l.Mint(addr(0xD0), 1_000_000)
	ops := [][]byte{deployTokenTx(addr(0xD0))}
	res := l.ExecuteBlock(1, ops)
	d := l.Digest()

	p, err := l.ProveOperation(1, 0)
	if err != nil {
		t.Fatalf("ProveOperation: %v", err)
	}
	if err := Verify(d, ops[0], res[0], 1, 0, p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := Verify(d, ops[0], []byte("forged"), 1, 0, p); !errors.Is(err, ErrBadProof) {
		t.Fatalf("forged result accepted: err=%v", err)
	}
	if _, err := l.ProveOperation(5, 0); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("err=%v, want ErrUnknownBlock", err)
	}
	if _, err := l.ProveOperation(1, 3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestLedgerSnapshotRestore(t *testing.T) {
	l := NewLedger()
	l.Mint(addr(0xD0), 1_000_000)
	l.ExecuteBlock(1, [][]byte{deployTokenTx(addr(0xD0))})
	snap, err := l.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	r := NewLedger()
	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !bytes.Equal(r.Digest(), l.Digest()) {
		t.Fatal("restored digest differs")
	}
	// Continue identically.
	token := ContractAddress(addr(0xD0), 0)
	next := [][]byte{Tx{Kind: TxCall, From: addr(1), To: token, GasLimit: 1_000_000,
		Data: TokenCalldata(TokenMint, addr(1), 7)}.Encode()}
	l.ExecuteBlock(2, next)
	r.ExecuteBlock(2, next)
	if !bytes.Equal(r.Digest(), l.Digest()) {
		t.Fatal("digests diverged after restore")
	}
	if err := r.Restore([]byte("garbage")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestLedgerGarbageCollect(t *testing.T) {
	l := NewLedger()
	for seq := uint64(1); seq <= 5; seq++ {
		l.ExecuteBlock(seq, [][]byte{{0xFF}})
	}
	l.GarbageCollect(4)
	if _, ok := l.Results(2); ok {
		t.Fatal("GC'd block results still present")
	}
	if _, ok := l.Results(4); !ok {
		t.Fatal("retained block results missing")
	}
}

// TestLedgerSnapshotCanonical pins the determinism contract the
// replication layer's chunked checkpoint commitment relies on: two ledgers
// executing the same blocks must serialize identical snapshot bytes.
func TestLedgerSnapshotCanonical(t *testing.T) {
	build := func() *Ledger {
		l := NewLedger()
		deployer := addr(0xD0)
		l.Mint(deployer, 1_000_000_000)
		token, err := l.GenesisCreate(deployer, TokenDeploy(), 10_000_000)
		if err != nil {
			t.Fatalf("genesis deploy: %v", err)
		}
		for seq := uint64(1); seq <= 4; seq++ {
			var ops [][]byte
			for i := 0; i < 16; i++ {
				ops = append(ops, Tx{
					Kind: TxCall, From: deployer, To: token, GasLimit: 1_000_000,
					Data: TokenCalldata(TokenMint, addr(byte(seq*16+uint64(i))), uint64(i)+1),
				}.Encode())
			}
			l.ExecuteBlock(seq, ops)
		}
		return l
	}
	a, b := build(), build()
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatal("ledgers with identical state serialized different snapshot bytes")
	}
	again, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, again) {
		t.Fatal("repeated snapshot of the same ledger differs")
	}
}
