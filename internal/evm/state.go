package evm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"strings"

	"sbft/internal/merkle"
)

// AddressSize is the byte length of an account address.
const AddressSize = 20

// Address identifies an account or contract.
type Address [AddressSize]byte

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return fmt.Sprintf("0x%x", a[:]) }

// AddressFromBytes builds an address from the low 20 bytes of b.
func AddressFromBytes(b []byte) Address {
	var a Address
	if len(b) >= AddressSize {
		copy(a[:], b[len(b)-AddressSize:])
	} else {
		copy(a[AddressSize-len(b):], b)
	}
	return a
}

// Word is a 256-bit EVM word.
type Word [32]byte

// Big converts the word to a big.Int.
func (w Word) Big() *big.Int { return new(big.Int).SetBytes(w[:]) }

// WordFromBig truncates a big.Int into a 256-bit word.
func WordFromBig(v *big.Int) Word {
	var w Word
	b := new(big.Int).And(v, u256Mask).Bytes()
	copy(w[32-len(b):], b)
	return w
}

// WordFromUint64 builds a word from a uint64.
func WordFromUint64(v uint64) Word {
	var w Word
	binary.BigEndian.PutUint64(w[24:], v)
	return w
}

var u256Mask = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))

// State is the world-state interface the VM executes against. The ledger
// implementation stores everything in an authenticated merkle.Map so the
// post-execution digest commits to the entire contract state (§IV).
type State interface {
	GetBalance(Address) *big.Int
	SetBalance(Address, *big.Int)
	GetNonce(Address) uint64
	SetNonce(Address, uint64)
	GetCode(Address) []byte
	SetCode(Address, []byte)
	GetStorage(Address, Word) Word
	SetStorage(Address, Word, Word)
	// Snapshot and RevertTo implement transaction-level rollback for
	// REVERT and failed calls.
	Snapshot() int
	RevertTo(int)
}

// MapState implements State over an authenticated merkle.Map with an undo
// journal for snapshots. Key layout (all printable prefixes for
// debuggability):
//
//	b/<addr-hex>           balance (big-endian bytes)
//	n/<addr-hex>           nonce (8 bytes)
//	c/<addr-hex>           code
//	s/<addr-hex>/<key-hex> storage word
type MapState struct {
	m       *merkle.Map
	journal []journalEntry
	// onWrite observes every map mutation (writes, deletions, and journal
	// rollbacks alike) so the ledger's incremental snapshot tracker stays
	// an exact mirror of the authenticated map.
	onWrite func(key string, val []byte, deleted bool)
	// guard vets every write key BEFORE it reaches the map (partition.go:
	// sharded deployments refuse writes to foreign or locked accounts). A
	// rejected write is dropped and recorded as the transaction's sticky
	// violation; the ledger reverts the whole transaction and substitutes
	// an error receipt. Rollbacks bypass the guard on purpose — undoing an
	// admitted write must always succeed.
	guard     func(key string) error
	violation error
}

type journalEntry struct {
	key     string
	prev    []byte
	existed bool
}

// NewMapState wraps an authenticated map as EVM world state.
func NewMapState(m *merkle.Map) *MapState { return &MapState{m: m} }

// SetWriteHook registers fn to observe every subsequent mutation of the
// underlying map, including RevertTo rollbacks (which bypass the normal
// set/del funnel on purpose — they must not re-journal).
func (s *MapState) SetWriteHook(fn func(key string, val []byte, deleted bool)) {
	s.onWrite = fn
}

func (s *MapState) notify(key string, val []byte, deleted bool) {
	if s.onWrite != nil {
		s.onWrite(key, val, deleted)
	}
}

var _ State = (*MapState)(nil)

func addrKey(prefix string, a Address) string {
	return prefix + "/" + hexStr(a[:])
}

func storageKey(a Address, k Word) string {
	return "s/" + hexStr(a[:]) + "/" + hexStr(k[:])
}

const hexDigits = "0123456789abcdef"

func hexStr(b []byte) string {
	var sb strings.Builder
	sb.Grow(len(b) * 2)
	for _, c := range b {
		sb.WriteByte(hexDigits[c>>4])
		sb.WriteByte(hexDigits[c&0x0f])
	}
	return sb.String()
}

// SetGuard installs the write-key guard. All replicas of a group must
// install identical guards before sequence 1 (the guard decides receipt
// outcomes, so it is part of deterministic execution).
func (s *MapState) SetGuard(fn func(key string) error) { s.guard = fn }

// Violation reports the first guard rejection since the last
// ClearViolation (nil when the transaction stayed inside its partition).
func (s *MapState) Violation() error { return s.violation }

// ClearViolation resets the sticky violation at a transaction boundary.
func (s *MapState) ClearViolation() { s.violation = nil }

// admit applies the guard to a write key, recording the first rejection.
func (s *MapState) admit(key string) bool {
	if s.guard == nil {
		return true
	}
	if err := s.guard(key); err != nil {
		if s.violation == nil {
			s.violation = err
		}
		return false
	}
	return true
}

func (s *MapState) set(key string, val []byte) {
	if !s.admit(key) {
		return
	}
	prev, existed := s.m.Get(key)
	s.journal = append(s.journal, journalEntry{key: key, prev: prev, existed: existed})
	s.m.Set(key, val)
	s.notify(key, val, false)
}

func (s *MapState) del(key string) {
	if !s.admit(key) {
		return
	}
	prev, existed := s.m.Get(key)
	if !existed {
		return
	}
	s.journal = append(s.journal, journalEntry{key: key, prev: prev, existed: true})
	s.m.Delete(key)
	s.notify(key, nil, true)
}

// GetBalance implements State.
func (s *MapState) GetBalance(a Address) *big.Int {
	v, ok := s.m.Get(addrKey("b", a))
	if !ok {
		return new(big.Int)
	}
	return new(big.Int).SetBytes(v)
}

// SetBalance implements State.
func (s *MapState) SetBalance(a Address, v *big.Int) {
	if v.Sign() == 0 {
		s.del(addrKey("b", a))
		return
	}
	s.set(addrKey("b", a), v.Bytes())
}

// GetNonce implements State.
func (s *MapState) GetNonce(a Address) uint64 {
	v, ok := s.m.Get(addrKey("n", a))
	if !ok || len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// SetNonce implements State.
func (s *MapState) SetNonce(a Address, n uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], n)
	s.set(addrKey("n", a), buf[:])
}

// GetCode implements State.
func (s *MapState) GetCode(a Address) []byte {
	v, _ := s.m.Get(addrKey("c", a))
	return v
}

// SetCode implements State.
func (s *MapState) SetCode(a Address, code []byte) {
	s.set(addrKey("c", a), code)
}

// GetStorage implements State.
func (s *MapState) GetStorage(a Address, k Word) Word {
	v, ok := s.m.Get(storageKey(a, k))
	var w Word
	if ok {
		copy(w[32-len(v):], v)
	}
	return w
}

// SetStorage implements State.
func (s *MapState) SetStorage(a Address, k, v Word) {
	if v == (Word{}) {
		s.del(storageKey(a, k))
		return
	}
	s.set(storageKey(a, k), trimLeadingZeros(v[:]))
}

func trimLeadingZeros(b []byte) []byte {
	i := 0
	for i < len(b)-1 && b[i] == 0 {
		i++
	}
	return b[i:]
}

// Snapshot implements State: returns a journal mark.
func (s *MapState) Snapshot() int { return len(s.journal) }

// RevertTo implements State: undoes all writes after the mark.
func (s *MapState) RevertTo(mark int) {
	for i := len(s.journal) - 1; i >= mark; i-- {
		e := s.journal[i]
		if e.existed {
			s.m.Set(e.key, e.prev)
			s.notify(e.key, e.prev, false)
		} else {
			s.m.Delete(e.key)
			s.notify(e.key, nil, true)
		}
	}
	s.journal = s.journal[:mark]
}

// DiscardJournal clears the undo log (call at transaction boundaries once
// the transaction outcome is final).
func (s *MapState) DiscardJournal() { s.journal = s.journal[:0] }

// ContractAddress derives the address of a contract created by sender with
// the given nonce. The real EVM uses Keccak(rlp(sender, nonce)); we use
// SHA-256 over a fixed encoding (documented substitution).
func ContractAddress(sender Address, nonce uint64) Address {
	h := sha256.New()
	h.Write([]byte("evm:create"))
	h.Write(sender[:])
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	h.Write(nb[:])
	return AddressFromBytes(h.Sum(nil))
}
