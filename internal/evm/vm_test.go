package evm

import (
	"bytes"
	"errors"
	"math/big"
	"testing"
	"testing/quick"

	"sbft/internal/merkle"
)

func newTestVM() (*VM, *MapState) {
	st := NewMapState(merkle.NewMap())
	return NewVM(st, Context{BlockNum: 1, Timestamp: 1000}), st
}

func addr(b byte) Address {
	var a Address
	a[AddressSize-1] = b
	return a
}

// runCode executes raw code as a contract call frame and returns the result.
func runCode(t *testing.T, code []byte, input []byte) ExecResult {
	t.Helper()
	vm, st := newTestVM()
	self := addr(0xCC)
	st.SetCode(self, code)
	res, err := vm.Call(addr(0x01), self, nil, input, 1_000_000)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	return res
}

func wantWord(t *testing.T, got []byte, want uint64) {
	t.Helper()
	if len(got) != 32 {
		t.Fatalf("return length = %d, want 32", len(got))
	}
	w := WordFromUint64(want)
	if !bytes.Equal(got, w[:]) {
		t.Fatalf("return = %x, want %d", got, want)
	}
}

// retWord builds code that computes with the asm program and returns the
// top of stack as one word.
func retTop(a *Asm) []byte {
	a.Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(RETURN)
	return a.MustBuild()
}

func TestArithmeticOps(t *testing.T) {
	tests := []struct {
		name string
		prog func() *Asm
		want uint64
	}{
		{"add", func() *Asm { return NewAsm().Push(2).Push(3).Op(ADD) }, 5},
		{"mul", func() *Asm { return NewAsm().Push(7).Push(6).Op(MUL) }, 42},
		{"sub", func() *Asm { return NewAsm().Push(3).Push(10).Op(SUB) }, 7},
		{"div", func() *Asm { return NewAsm().Push(4).Push(20).Op(DIV) }, 5},
		{"div by zero", func() *Asm { return NewAsm().Push(0).Push(20).Op(DIV) }, 0},
		{"mod", func() *Asm { return NewAsm().Push(5).Push(17).Op(MOD) }, 2},
		{"mod by zero", func() *Asm { return NewAsm().Push(0).Push(17).Op(MOD) }, 0},
		{"exp", func() *Asm { return NewAsm().Push(10).Push(2).Op(EXP) }, 1024},
		{"lt true", func() *Asm { return NewAsm().Push(5).Push(3).Op(LT) }, 1},
		{"lt false", func() *Asm { return NewAsm().Push(3).Push(5).Op(LT) }, 0},
		{"gt true", func() *Asm { return NewAsm().Push(3).Push(5).Op(GT) }, 1},
		{"eq true", func() *Asm { return NewAsm().Push(9).Push(9).Op(EQ) }, 1},
		{"eq false", func() *Asm { return NewAsm().Push(9).Push(8).Op(EQ) }, 0},
		{"iszero of zero", func() *Asm { return NewAsm().Push(0).Op(ISZERO) }, 1},
		{"iszero of one", func() *Asm { return NewAsm().Push(1).Op(ISZERO) }, 0},
		{"and", func() *Asm { return NewAsm().Push(0b1100).Push(0b1010).Op(AND) }, 0b1000},
		{"or", func() *Asm { return NewAsm().Push(0b1100).Push(0b1010).Op(OR) }, 0b1110},
		{"xor", func() *Asm { return NewAsm().Push(0b1100).Push(0b1010).Op(XOR) }, 0b0110},
		{"shl", func() *Asm { return NewAsm().Push(1).Push(4).Op(SHL) }, 16},
		{"shr", func() *Asm { return NewAsm().Push(16).Push(2).Op(SHR) }, 4},
		{"addmod", func() *Asm { return NewAsm().Push(7).Push(5).Push(9).Op(ADDMOD) }, 0},
		{"mulmod", func() *Asm { return NewAsm().Push(7).Push(5).Push(4).Op(MULMOD) }, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := runCode(t, retTop(tt.prog()), nil)
			wantWord(t, res.Ret, tt.want)
		})
	}
}

// Stack order note: Push(a).Push(b).Op(SUB) computes b - a since b is on top.

func TestArithmeticOverflowWraps(t *testing.T) {
	// (2^256 - 1) + 2 == 1 (mod 2^256)
	a := NewAsm()
	a.PushBig(new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1)))
	a.Push(2).Op(ADD)
	res := runCode(t, retTop(a), nil)
	wantWord(t, res.Ret, 1)
}

func TestSignedOps(t *testing.T) {
	negOne := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))
	t.Run("sdiv -6/2", func(t *testing.T) {
		negSix := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(6))
		a := NewAsm().Push(2)
		a.PushBig(negSix).Op(SDIV)
		res := runCode(t, retTop(a), nil)
		negThree := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(3))
		w := WordFromBig(negThree)
		if !bytes.Equal(res.Ret, w[:]) {
			t.Fatalf("sdiv = %x, want -3", res.Ret)
		}
	})
	t.Run("slt -1 < 1", func(t *testing.T) {
		a := NewAsm().Push(1)
		a.PushBig(negOne).Op(SLT)
		res := runCode(t, retTop(a), nil)
		wantWord(t, res.Ret, 1)
	})
	t.Run("sgt 1 > -1", func(t *testing.T) {
		a := NewAsm().PushBig(negOne)
		a.Push(1).Op(SGT)
		res := runCode(t, retTop(a), nil)
		wantWord(t, res.Ret, 1)
	})
}

func TestMemoryOps(t *testing.T) {
	// MSTORE8 then MLOAD: byte lands at the given offset.
	a := NewAsm()
	a.Push(0xAB).Push(31).Op(MSTORE8) // mem[31] = 0xAB
	a.Push(0).Op(MLOAD)
	res := runCode(t, retTop(a), nil)
	wantWord(t, res.Ret, 0xAB)
}

func TestCalldataOps(t *testing.T) {
	input := AdderCalldata(big.NewInt(30), big.NewInt(12))
	res := runCode(t, AdderRuntime(), input)
	wantWord(t, res.Ret, 42)

	t.Run("calldatasize", func(t *testing.T) {
		a := NewAsm().Op(CALLDATASIZE)
		res := runCode(t, retTop(a), input)
		wantWord(t, res.Ret, 64)
	})
	t.Run("out of range load is zero", func(t *testing.T) {
		a := NewAsm().Push(1000).Op(CALLDATALOAD)
		res := runCode(t, retTop(a), input)
		wantWord(t, res.Ret, 0)
	})
	t.Run("calldatacopy", func(t *testing.T) {
		a := NewAsm()
		a.Push(32).Push(32).Push(0).Op(CALLDATACOPY) // copy word1 → mem[0]
		a.Push(0).Op(MLOAD)
		res := runCode(t, retTop(a), input)
		wantWord(t, res.Ret, 12)
	})
}

func TestControlFlow(t *testing.T) {
	t.Run("jump skips revert", func(t *testing.T) {
		a := NewAsm()
		a.Jump("ok")
		a.Push(0).Push(0).Op(REVERT)
		a.Label("ok")
		a.Push(7)
		res := runCode(t, retTop(a), nil)
		wantWord(t, res.Ret, 7)
	})
	t.Run("jumpi not taken", func(t *testing.T) {
		a := NewAsm()
		a.Push(0).JumpI("skip")
		a.Push(1)
		a.Label("skip2")
		_ = a
		b := NewAsm()
		b.Push(0).JumpI("skip")
		b.Push(42)
		b.Label("skip")
		res := runCode(t, retTop(b), nil)
		// Not taken: falls through Push(42), then JUMPDEST, returns 42.
		wantWord(t, res.Ret, 42)
	})
	t.Run("jump to non-jumpdest fails", func(t *testing.T) {
		code := NewAsm().Push(1).Op(JUMP).MustBuild()
		vm, st := newTestVM()
		self := addr(0xCC)
		st.SetCode(self, code)
		_, err := vm.Call(addr(1), self, nil, nil, 100000)
		if !errors.Is(err, ErrBadJump) {
			t.Fatalf("err=%v, want ErrBadJump", err)
		}
	})
	t.Run("jump into push data fails", func(t *testing.T) {
		// PUSH2 0x5b5b then JUMP to offset 1 (inside the push immediate).
		code := []byte{byte(PUSH2), 0x5b, 0x5b, byte(PUSH1), 1, byte(JUMP)}
		vm, st := newTestVM()
		self := addr(0xCC)
		st.SetCode(self, code)
		_, err := vm.Call(addr(1), self, nil, nil, 100000)
		if !errors.Is(err, ErrBadJump) {
			t.Fatalf("err=%v, want ErrBadJump", err)
		}
	})
	t.Run("loop terminates", func(t *testing.T) {
		// sum 1..10 via loop.
		a := NewAsm()
		a.Push(0)  // sum
		a.Push(10) // i
		a.Label("loop")
		a.Op(DUP1).Op(ISZERO).JumpI("end") // [sum, i]
		a.Op(DUP1)                         // [sum, i, i]
		a.Op(SWAP2)                        // [i, i, sum]
		a.Op(ADD)                          // [i, sum+i]
		a.Op(SWAP1)                        // [sum+i, i]
		a.Push(1).Op(SWAP1).Op(SUB)        // [sum+i, i-1]
		a.Jump("loop")
		a.Label("end")
		a.Op(POP)
		res := runCode(t, retTop(a), nil)
		wantWord(t, res.Ret, 55)
	})
}

func TestStorageOps(t *testing.T) {
	a := NewAsm()
	a.Push(99).Push(7).Op(SSTORE) // storage[7] = 99
	a.Push(7).Op(SLOAD)
	res := runCode(t, retTop(a), nil)
	wantWord(t, res.Ret, 99)
}

func TestEnvironmentOps(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	caller := addr(0x7F)
	t.Run("caller and address", func(t *testing.T) {
		a := NewAsm().Op(CALLER)
		st.SetCode(self, retTop(a))
		res, err := vm.Call(caller, self, nil, nil, 100000)
		if err != nil {
			t.Fatal(err)
		}
		want := WordFromBig(new(big.Int).SetBytes(caller[:]))
		if !bytes.Equal(res.Ret, want[:]) {
			t.Fatalf("CALLER = %x", res.Ret)
		}
	})
	t.Run("callvalue", func(t *testing.T) {
		st.SetBalance(caller, big.NewInt(1000))
		a := NewAsm().Op(CALLVALUE)
		st.SetCode(self, retTop(a))
		res, err := vm.Call(caller, self, big.NewInt(123), nil, 100000)
		if err != nil {
			t.Fatal(err)
		}
		wantWord(t, res.Ret, 123)
	})
	t.Run("block number", func(t *testing.T) {
		a := NewAsm().Op(BLOCKNUM)
		st.SetCode(self, retTop(a))
		res, err := vm.Call(caller, self, nil, nil, 100000)
		if err != nil {
			t.Fatal(err)
		}
		wantWord(t, res.Ret, 1)
	})
}

func TestRevertRollsBackState(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	a := NewAsm()
	a.Push(1).Push(1).Op(SSTORE) // storage[1] = 1
	a.Push(0).Push(0).Op(REVERT)
	st.SetCode(self, a.MustBuild())
	res, err := vm.Call(addr(1), self, nil, nil, 100000)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !res.Reverted {
		t.Fatal("expected revert")
	}
	if got := st.GetStorage(self, WordFromUint64(1)); got != (Word{}) {
		t.Fatalf("storage survived revert: %x", got)
	}
}

func TestOutOfGas(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	// Infinite loop must exhaust gas.
	a := NewAsm()
	a.Label("loop").Jump("loop")
	st.SetCode(self, a.MustBuild())
	_, err := vm.Call(addr(1), self, nil, nil, 10_000)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("err=%v, want ErrOutOfGas", err)
	}
}

func TestStackErrors(t *testing.T) {
	t.Run("underflow", func(t *testing.T) {
		vm, st := newTestVM()
		self := addr(0xCC)
		st.SetCode(self, []byte{byte(ADD)})
		_, err := vm.Call(addr(1), self, nil, nil, 100000)
		if !errors.Is(err, ErrStackUnderflow) {
			t.Fatalf("err=%v, want ErrStackUnderflow", err)
		}
	})
	t.Run("overflow", func(t *testing.T) {
		vm, st := newTestVM()
		self := addr(0xCC)
		a := NewAsm()
		a.Push(1)
		a.Label("loop").Op(DUP1).Jump("loop")
		st.SetCode(self, a.MustBuild())
		_, err := vm.Call(addr(1), self, nil, nil, 100_000)
		if !errors.Is(err, ErrStackOverflow) && !errors.Is(err, ErrOutOfGas) {
			t.Fatalf("err=%v, want ErrStackOverflow or ErrOutOfGas", err)
		}
	})
}

func TestInvalidOpcode(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	st.SetCode(self, []byte{0xef})
	_, err := vm.Call(addr(1), self, nil, nil, 100000)
	if !errors.Is(err, ErrInvalidOpcode) {
		t.Fatalf("err=%v, want ErrInvalidOpcode", err)
	}
}

func TestValueTransfer(t *testing.T) {
	vm, st := newTestVM()
	alice, bob := addr(0xA1), addr(0xB2)
	st.SetBalance(alice, big.NewInt(100))
	if _, err := vm.Call(alice, bob, big.NewInt(40), nil, 100000); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got := st.GetBalance(alice); got.Int64() != 60 {
		t.Fatalf("alice = %v, want 60", got)
	}
	if got := st.GetBalance(bob); got.Int64() != 40 {
		t.Fatalf("bob = %v, want 40", got)
	}
	if _, err := vm.Call(alice, bob, big.NewInt(1000), nil, 100000); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("overdraft err=%v, want ErrInsufficient", err)
	}
}

func TestCreateAndCall(t *testing.T) {
	vm, st := newTestVM()
	deployer := addr(0xD0)
	st.SetBalance(deployer, big.NewInt(1_000_000))

	contractAddr, res, err := vm.Create(deployer, nil, TokenDeploy(), 1_000_000)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if res.Reverted {
		t.Fatal("deploy reverted")
	}
	if !bytes.Equal(st.GetCode(contractAddr), TokenRuntime()) {
		t.Fatal("installed code differs from runtime")
	}

	// Mint 100 to alice, then transfer 30 to bob via calls.
	alice, bob := addr(0xA1), addr(0xB2)
	mint, err := vm.Call(alice, contractAddr, nil, TokenCalldata(TokenMint, alice, 100), 1_000_000)
	if err != nil || mint.Reverted {
		t.Fatalf("mint: %v reverted=%v", err, mint.Reverted)
	}
	tr, err := vm.Call(alice, contractAddr, nil, TokenCalldata(TokenTransfer, bob, 30), 1_000_000)
	if err != nil || tr.Reverted {
		t.Fatalf("transfer: %v reverted=%v", err, tr.Reverted)
	}
	if len(tr.Logs) != 1 {
		t.Fatalf("transfer logs = %d, want 1", len(tr.Logs))
	}

	balOf := func(who Address) uint64 {
		res, err := vm.Call(addr(1), contractAddr, nil, TokenCalldata(TokenBalance, who, 0), 1_000_000)
		if err != nil || res.Reverted {
			t.Fatalf("balance: %v", err)
		}
		return new(big.Int).SetBytes(res.Ret).Uint64()
	}
	if got := balOf(alice); got != 70 {
		t.Fatalf("alice balance = %d, want 70", got)
	}
	if got := balOf(bob); got != 30 {
		t.Fatalf("bob balance = %d, want 30", got)
	}

	// Over-transfer reverts and leaves balances intact.
	over, err := vm.Call(bob, contractAddr, nil, TokenCalldata(TokenTransfer, alice, 1_000_000), 1_000_000)
	if err != nil {
		t.Fatalf("over-transfer: %v", err)
	}
	if !over.Reverted {
		t.Fatal("over-transfer did not revert")
	}
	if got := balOf(bob); got != 30 {
		t.Fatalf("bob after failed transfer = %d, want 30", got)
	}
}

func TestChurnContract(t *testing.T) {
	vm, st := newTestVM()
	deployer := addr(0xD0)
	contractAddr, res, err := vm.Create(deployer, nil, ChurnDeploy(), 1_000_000)
	if err != nil || res.Reverted {
		t.Fatalf("deploy: %v", err)
	}
	out, err := vm.Call(addr(1), contractAddr, nil, ChurnCalldata(8), 1_000_000)
	if err != nil || out.Reverted {
		t.Fatalf("churn: %v reverted=%v", err, out.Reverted)
	}
	for i := uint64(0); i < 8; i++ {
		if got := st.GetStorage(contractAddr, WordFromUint64(i)); got != WordFromUint64(i) {
			t.Fatalf("slot %d = %x", i, got)
		}
	}
}

func TestNestedCallOpcode(t *testing.T) {
	vm, st := newTestVM()
	// Deploy the adder, then a caller contract that CALLs it and returns
	// the result.
	adderAddr, res, err := vm.Create(addr(0xD0), nil, DeployWrapper(AdderRuntime()), 1_000_000)
	if err != nil || res.Reverted {
		t.Fatalf("deploy adder: %v", err)
	}

	a := NewAsm()
	// Write calldata for adder into memory: mem[0]=5, mem[32]=9.
	a.Push(5).Push(0).Op(MSTORE)
	a.Push(9).Push(32).Op(MSTORE)
	// CALL(gas=0→all, to=adder, value=0, in=0..64, out=64..96)
	a.Push(32).Push(64) // outSize, outOff
	a.Push(64).Push(0)  // inSize, inOff
	a.Push(0)           // value
	a.PushBytes(adderAddr[:])
	a.Push(0) // gas → all available
	a.Op(CALL)
	a.Op(POP) // drop success flag
	a.Push(64).Op(MLOAD)
	code := retTop(a)
	self := addr(0xCA)
	st.SetCode(self, code)
	out, err := vm.Call(addr(1), self, nil, nil, 1_000_000)
	if err != nil {
		t.Fatalf("outer call: %v", err)
	}
	wantWord(t, out.Ret, 14)
}

func TestCallDepthLimit(t *testing.T) {
	vm, st := newTestVM()
	self := addr(0xCC)
	// Contract that calls itself forever.
	a := NewAsm()
	a.Push(0).Push(0).Push(0).Push(0).Push(0)
	a.PushBytes(self[:])
	a.Push(0)
	a.Op(CALL)
	a.Op(POP).Op(STOP)
	st.SetCode(self, a.MustBuild())
	res, err := vm.Call(addr(1), self, nil, nil, 100_000_000)
	// Recursion is cut by depth or gas; either is acceptable, and the
	// outer call itself must not error out.
	if err != nil {
		t.Fatalf("outer call err: %v", err)
	}
	if res.Reverted {
		t.Fatal("outer call reverted")
	}
}

func TestSha3Deterministic(t *testing.T) {
	a := NewAsm()
	a.Push(0xAB).Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(SHA3)
	res1 := runCode(t, retTop(a), nil)
	b := NewAsm()
	b.Push(0xAB).Push(0).Op(MSTORE)
	b.Push(32).Push(0).Op(SHA3)
	res2 := runCode(t, retTop(b), nil)
	if !bytes.Equal(res1.Ret, res2.Ret) {
		t.Fatal("SHA3 nondeterministic")
	}
	if new(big.Int).SetBytes(res1.Ret).Sign() == 0 {
		t.Fatal("SHA3 returned zero")
	}
}

func TestQuickAdderMatchesBigInt(t *testing.T) {
	code := AdderRuntime()
	vm, st := newTestVM()
	self := addr(0xCC)
	st.SetCode(self, code)
	mod := new(big.Int).Lsh(big.NewInt(1), 256)
	f := func(x, y uint64) bool {
		bx, by := new(big.Int).SetUint64(x), new(big.Int).SetUint64(y)
		res, err := vm.Call(addr(1), self, nil, AdderCalldata(bx, by), 1_000_000)
		if err != nil || res.Reverted {
			return false
		}
		want := new(big.Int).Add(bx, by)
		want.Mod(want, mod)
		return new(big.Int).SetBytes(res.Ret).Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
