package evm

import "math/big"

// This file holds hand-assembled contracts used by tests, examples and the
// smart-contract workload generator (the substitute for the paper's 500k
// real Ethereum transactions, see DESIGN.md).

// Token method selectors (first calldata word).
const (
	TokenMint     = 1
	TokenTransfer = 2
	TokenBalance  = 3
)

// TokenRuntime assembles the runtime bytecode of a minimal fungible-token
// contract. Storage layout: balance of address A is stored at key A.
// Calldata layout: word0 = method, word1 = address, word2 = amount.
//
//	method 1 (mint):     bal[to] += amount, returns 1
//	method 2 (transfer): moves amount from CALLER to to, reverts if
//	                     insufficient, returns 1
//	method 3 (balance):  returns bal[addr]
func TokenRuntime() []byte {
	a := NewAsm()
	// Dispatch on method word.
	a.Push(0).Op(CALLDATALOAD) // [m]
	a.Op(DUP1).Push(TokenMint).Op(EQ).JumpI("mint")
	a.Op(DUP1).Push(TokenTransfer).Op(EQ).JumpI("transfer")
	a.Op(DUP1).Push(TokenBalance).Op(EQ).JumpI("balance")
	a.Push(0).Push(0).Op(REVERT)

	// mint(to, amount)
	a.Label("mint").Op(POP)
	a.Push(32).Op(CALLDATALOAD)  // [to]
	a.Op(DUP1).Op(SLOAD)         // [to, bal]
	a.Push(64).Op(CALLDATALOAD)  // [to, bal, amt]
	a.Op(ADD)                    // [to, bal+amt]
	a.Op(SWAP1)                  // [bal+amt, to]
	a.Op(SSTORE)                 // []
	a.Push(1).Push(0).Op(MSTORE) // mem[0:32] = 1
	a.Push(32).Push(0).Op(RETURN)

	// transfer(to, amount) from CALLER
	a.Label("transfer").Op(POP)
	a.Op(CALLER)                // [from]
	a.Op(DUP1).Op(SLOAD)        // [from, balF]
	a.Push(64).Op(CALLDATALOAD) // [from, balF, amt]
	a.Op(DUP1)                  // [from, balF, amt, amt]
	a.Op(DUP3)                  // [from, balF, amt, amt, balF]
	a.Op(LT)                    // [from, balF, amt, balF<amt]
	a.JumpI("insufficient")     // [from, balF, amt]
	a.Op(SWAP1)                 // [from, amt, balF]
	a.Op(SUB)                   // [from, balF-amt]
	a.Op(SWAP1)                 // [balF-amt, from]
	a.Op(SSTORE)                // []
	a.Push(32).Op(CALLDATALOAD) // [to]
	a.Op(DUP1).Op(SLOAD)        // [to, balT]
	a.Push(64).Op(CALLDATALOAD) // [to, balT, amt]
	a.Op(ADD).Op(SWAP1)         // [balT+amt, to]
	a.Op(SSTORE)                // []
	// Emit a transfer log: LOG1 with topic = to address.
	a.Push(32).Op(CALLDATALOAD) // [to]
	a.Push(0).Push(0)           // [to, size=0... order: see LOG]
	a.Op(LOG1)
	a.Push(1).Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(RETURN)

	a.Label("insufficient")
	a.Push(0).Push(0).Op(REVERT)

	// balance(addr)
	a.Label("balance").Op(POP)
	a.Push(32).Op(CALLDATALOAD).Op(SLOAD) // [bal]
	a.Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(RETURN)

	return a.MustBuild()
}

// TokenDeploy returns init code that installs TokenRuntime.
func TokenDeploy() []byte { return DeployWrapper(TokenRuntime()) }

// TokenCalldata builds calldata for a token method invocation.
func TokenCalldata(method uint64, addr Address, amount uint64) []byte {
	buf := make([]byte, 96)
	m := WordFromUint64(method)
	copy(buf[0:32], m[:])
	copy(buf[32+12:64], addr[:]) // address right-aligned in word1
	am := WordFromUint64(amount)
	copy(buf[64:96], am[:])
	return buf
}

// ChurnRuntime assembles a storage-churn contract: calldata word0 = n, and
// the contract writes storage slots 0..n-1, modeling state-heavy contract
// workloads.
func ChurnRuntime() []byte {
	a := NewAsm()
	a.Push(0).Op(CALLDATALOAD) // [n]
	a.Push(0)                  // [n, i]
	a.Label("loop")
	a.Op(DUP2).Op(DUP2) // [n, i, n, i]
	a.Op(LT)            // [n, i, i<n]
	a.Op(ISZERO).JumpI("end")
	a.Op(DUP1).Op(DUP1) // [n, i, i, i]
	a.Op(SSTORE)        // [n, i]
	a.Push(1).Op(ADD)   // [n, i+1]
	a.Jump("loop")
	a.Label("end")
	a.Op(STOP)
	return a.MustBuild()
}

// ChurnDeploy returns init code installing ChurnRuntime.
func ChurnDeploy() []byte { return DeployWrapper(ChurnRuntime()) }

// ChurnCalldata builds calldata asking for n storage writes.
func ChurnCalldata(n uint64) []byte {
	w := WordFromUint64(n)
	return w[:]
}

// AdderRuntime assembles a pure-compute contract that sums word0 and word1
// of calldata and returns the result; used by VM unit tests.
func AdderRuntime() []byte {
	a := NewAsm()
	a.Push(0).Op(CALLDATALOAD)
	a.Push(32).Op(CALLDATALOAD)
	a.Op(ADD)
	a.Push(0).Op(MSTORE)
	a.Push(32).Push(0).Op(RETURN)
	return a.MustBuild()
}

// AdderCalldata builds calldata for AdderRuntime.
func AdderCalldata(x, y *big.Int) []byte {
	buf := make([]byte, 64)
	wx, wy := WordFromBig(x), WordFromBig(y)
	copy(buf[:32], wx[:])
	copy(buf[32:], wy[:])
	return buf
}
