module sbft

go 1.24
