package sbft

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope; the repo's docs use inline links.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks is the docs gate's link checker: every relative link in
// every tracked *.md file must resolve to an existing file or directory.
// External links (http/https/mailto) are not fetched — CI must not
// depend on the network — but their scheme must be well-formed.
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — checker is miswired")
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			// Relative link: strip any anchor and resolve against the
			// file's directory.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", md, m[1], resolved, err)
			}
		}
	}
}
