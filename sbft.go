// Package sbft is a from-scratch Go implementation of SBFT: a Scalable
// and Decentralized Trust Infrastructure (Golan Gueta et al., DSN 2019) —
// a Byzantine fault tolerant state-machine-replication engine for
// n = 3f + 2c + 1 replicas with four scalability ingredients: collector-
// based linear communication, an optimistic fast path, single-message
// client acknowledgement through threshold signatures, and c redundant
// servers that keep the fast path alive under stragglers.
//
// This facade re-exports the library's public surface:
//
//   - Config/Replica/Client: the sans-io protocol engine (internal/core)
//   - Cluster: a deterministic simulated deployment over a modeled WAN
//     (internal/cluster + internal/sim)
//   - Shell: real TCP deployment (internal/transport)
//   - KVApp/EVMApp: the authenticated key-value store and the EVM-subset
//     smart-contract ledger (internal/kvstore, internal/evm)
//
// Quickstart (simulated deployment):
//
//	cl, err := sbft.NewCluster(sbft.ClusterOptions{
//		Protocol: sbft.ProtoSBFT, F: 1, C: 0, Clients: 4,
//	})
//	res := cl.RunClosedLoop(100, func(client, i int) []byte {
//		return sbft.Put(fmt.Sprintf("key-%d-%d", client, i), []byte("v"))
//	}, time.Minute)
//	fmt.Printf("throughput: %.0f ops/s\n", res.Throughput)
//
// See examples/ for runnable programs and DESIGN.md for the paper
// reproduction map.
package sbft

import (
	"time"

	"sbft/internal/apps"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/crypto/threshsig"
	"sbft/internal/evm"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
	"sbft/internal/transport"
)

// Protocol variants (the paper's evaluation ladder, §IX).
const (
	ProtoPBFT       = cluster.ProtoPBFT
	ProtoLinearPBFT = cluster.ProtoLinearPBFT
	ProtoLinearFast = cluster.ProtoLinearFast
	ProtoSBFT       = cluster.ProtoSBFT
)

// Application kinds.
const (
	AppKV  = cluster.AppKV
	AppEVM = cluster.AppEVM
)

// Re-exported core types.
type (
	// Config parameterizes an SBFT deployment (n = 3f + 2c + 1).
	Config = core.Config
	// Replica is the sans-io SBFT replica event machine.
	Replica = core.Replica
	// Client is the sans-io SBFT client.
	Client = core.Client
	// Env is the world interface a node runs against.
	Env = core.Env
	// Application is the deterministic replicated service interface.
	Application = core.Application
	// Request is a client operation.
	Request = core.Request
	// Result is a completed client operation.
	Result = core.Result
	// CryptoSuite bundles the three threshold schemes (σ, τ, π).
	CryptoSuite = core.CryptoSuite
	// ReplicaKeys holds one replica's threshold signers.
	ReplicaKeys = core.ReplicaKeys
	// Metrics counts protocol events.
	Metrics = core.Metrics

	// ClusterOptions configures a simulated deployment.
	ClusterOptions = cluster.Options
	// Cluster is a wired simulated deployment.
	Cluster = cluster.Cluster
	// WorkloadResult summarizes a closed-loop run.
	WorkloadResult = cluster.WorkloadResult

	// Shell hosts a node over TCP.
	Shell = transport.Shell

	// KVApp is the authenticated key-value store application.
	KVApp = apps.KVApp
	// EVMApp is the smart-contract ledger application.
	EVMApp = apps.EVMApp
)

// DefaultConfig returns the paper's defaults for f and c.
func DefaultConfig(f, c int) Config { return core.DefaultConfig(f, c) }

// NewReplica constructs a replica over an Env (see internal/transport for
// a TCP Env and internal/cluster for the simulated one).
func NewReplica(id int, cfg Config, suite CryptoSuite, keys ReplicaKeys, app Application, env Env) (*Replica, error) {
	return core.NewReplica(id, cfg, suite, keys, app, env, nil)
}

// NewClient constructs a client. verifyKV/verifyEVM provide the proof
// checkers for the bundled applications.
func NewClient(id int, cfg Config, suite CryptoSuite, env Env, verify core.ProofVerifier) (*Client, error) {
	return core.NewClient(id, cfg, suite, env, verify)
}

// VerifyKV is the proof verifier for key-value clients.
var VerifyKV core.ProofVerifier = apps.VerifyKV

// VerifyEVM is the proof verifier for smart-contract clients.
var VerifyEVM core.ProofVerifier = apps.VerifyEVM

// ClientBase is the first node id used for clients.
const ClientBase = core.ClientBase

// DealInsecureSuite deals simulation-grade threshold keys (deterministic
// from seed). Production deployments use DealSuite with threshrsa.Dealer.
func DealInsecureSuite(cfg Config, seed string) (CryptoSuite, []ReplicaKeys, error) {
	return core.InsecureSuite(cfg, seed)
}

// DealSuite deals a suite from any threshold-signature dealer
// (e.g. threshrsa.Dealer for real RSA threshold keys).
func DealSuite(cfg Config, dealer threshsig.Dealer) (CryptoSuite, []ReplicaKeys, error) {
	return core.DealSuite(cfg, dealer)
}

// NewCluster wires a simulated deployment (replicas, clients, WAN model).
func NewCluster(opts ClusterOptions) (*Cluster, error) { return cluster.New(opts) }

// NewShell opens a TCP shell for a node.
func NewShell(id int, listenAddr string, peers map[int]string) (*Shell, error) {
	return transport.NewShell(id, listenAddr, peers)
}

// NewKVApp returns a fresh authenticated key-value application.
func NewKVApp() *KVApp { return apps.NewKVApp() }

// NewEVMApp returns a fresh smart-contract ledger application.
func NewEVMApp() *EVMApp { return apps.NewEVMApp() }

// Put encodes a key-value put operation.
func Put(key string, value []byte) []byte { return kvstore.Put(key, value) }

// Get encodes a key-value get operation.
func Get(key string) []byte { return kvstore.Get(key) }

// Delete encodes a key-value delete operation.
func Delete(key string) []byte { return kvstore.Delete(key) }

// EVMTx re-exports the smart-contract transaction type.
type EVMTx = evm.Tx

// WAN profiles for simulated deployments.
var (
	// ContinentProfile models the paper's 5-region continent WAN.
	ContinentProfile = sim.ContinentProfile
	// WorldProfile models the paper's 15-region world WAN.
	WorldProfile = sim.WorldProfile
)

// RunFor advances a simulated cluster by a horizon of virtual time.
func RunFor(cl *Cluster, d time.Duration) { cl.Run(d) }
