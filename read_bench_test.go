// Read-path benchmark: BenchmarkReadThroughput measures (in simulated
// time) closed-loop GET throughput through the ordering path against the
// consensus-free certified read path (value + Merkle proof against the
// latest π-certified snapshot), aimed at a single replica and spread
// round-robin over all n. The single-replica certified configuration must
// beat the ordered path by ≥3× at n=4 — the regression gate for the whole
// read subsystem: certified reads cost one request/reply exchange and a
// proof check instead of a full ordering round. Emits BENCH_reads.json
// when SBFT_BENCH_JSON names a directory.
package sbft_test

import (
	"fmt"
	"testing"
	"time"

	"sbft/internal/benchjson"
	"sbft/internal/cluster"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/sim"
)

var readsJSON = benchjson.New("reads", "ops-per-simulated-second")

const (
	readBenchClients = 8
	readBenchOps     = 25 // GETs per client per measured mode
)

type readBenchMode int

const (
	readModeOrdered readBenchMode = iota // GETs through consensus
	readModeSingle                       // certified reads, all aimed at replica 1
	readModeSpread                       // certified reads, round-robin over n
)

// readBenchThroughput builds a fresh n=4 cluster, populates one key per
// client, advances the certified frontier past every client's freshness
// floor, then runs a closed-loop GET phase in the given mode and returns
// ops per simulated second.
func readBenchThroughput(b *testing.B, mode readBenchMode) float64 {
	b.Helper()
	netCfg := sim.ContinentProfile(13)
	cl, err := cluster.New(cluster.Options{
		Protocol: cluster.ProtoSBFT, F: 1, C: 0,
		App: cluster.AppKV, Clients: readBenchClients, NetCfg: &netCfg, Seed: 13,
		ClientTimeout: 2 * time.Second,
		Tune: func(c *core.Config) {
			c.CheckpointInterval = 8
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	advanceUntil := func(what string, cond func() bool) {
		deadline := cl.Sched.Now() + 10*time.Minute
		for !cond() && cl.Sched.Now() < deadline {
			if cl.Sched.Run(deadline, 50_000) == 0 {
				break
			}
		}
		if !cond() {
			b.Fatalf("%s did not complete", what)
		}
	}

	// Populate: every client writes its own key (the key its GET phase
	// will target).
	res := cl.RunClosedLoop(1, func(client, i int) []byte {
		return kvstore.Put(fmt.Sprintf("bench/c%d", client), []byte(fmt.Sprintf("val-c%d", client)))
	}, 10*time.Minute)
	if res.Completed != readBenchClients {
		b.Fatalf("populate completed %d of %d", res.Completed, readBenchClients)
	}

	// Certified reads need every replica's stable frontier at or above
	// every client's freshness floor; filler writes land on checkpoint
	// boundaries eventually.
	maxFloor := func() uint64 {
		var m uint64
		for _, c := range cl.Clients {
			if f := c.SeqFloor(); f > m {
				m = f
			}
		}
		return m
	}
	frontierCovers := func() bool {
		for id := 1; id <= cl.N; id++ {
			if cl.Replicas[id].LastStable() < maxFloor() {
				return false
			}
		}
		return true
	}
	for i := 0; i < 40 && !frontierCovers(); i++ {
		fr := cl.RunClosedLoop(1, func(client, j int) []byte {
			return kvstore.Put(fmt.Sprintf("fill/c%d/k%d", client, i), []byte("x"))
		}, 10*time.Minute)
		if fr.Completed != readBenchClients {
			b.Fatalf("filler round %d completed %d of %d", i, fr.Completed, readBenchClients)
		}
	}
	advanceUntil("frontier catch-up", frontierCovers)

	// Closed-loop GET phase.
	var completed, fallbacks uint64
	salt := uint64(0)
	issue := func(ci int) {
		c := cl.Clients[ci]
		salt++
		op := kvstore.GetUnique(fmt.Sprintf("bench/c%d", ci), salt)
		var err error
		switch mode {
		case readModeOrdered:
			err = c.Submit(op)
		case readModeSingle:
			err = c.SubmitReadAt(op, 1)
		default:
			err = c.SubmitRead(op)
		}
		if err != nil {
			b.Fatalf("client %d issue: %v", ci, err)
		}
	}
	issued := make([]int, readBenchClients)
	for ci := range cl.Clients {
		ci := ci
		c := cl.Clients[ci]
		next := func() {
			completed++
			if issued[ci] < readBenchOps {
				issued[ci]++
				issue(ci)
			}
		}
		if mode == readModeOrdered {
			c.SetOnResult(func(core.Result) { next() })
		} else {
			c.SetOnResult(func(core.Result) {}) // populate hooks are stale
			c.SetOnReadResult(func(r core.ReadResult) {
				if r.Ordered {
					fallbacks++
				}
				next()
			})
		}
	}
	start := cl.Sched.Now()
	for ci := range cl.Clients {
		issued[ci] = 1
		issue(ci)
	}
	total := uint64(readBenchClients * readBenchOps)
	advanceUntil("GET phase", func() bool { return completed >= total })
	elapsed := cl.Sched.Now() - start
	if elapsed <= 0 {
		b.Fatal("GET phase consumed no simulated time")
	}
	if mode != readModeOrdered && fallbacks > 0 {
		b.Fatalf("%d certified reads fell back to the ordering path with a covering frontier", fallbacks)
	}
	return float64(total) / elapsed.Seconds()
}

func BenchmarkReadThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ordered := readBenchThroughput(b, readModeOrdered)
		single := readBenchThroughput(b, readModeSingle)
		spread := readBenchThroughput(b, readModeSpread)
		if i == 0 {
			for point, v := range map[string]float64{
				"n=4/ordered":          ordered,
				"n=4/certified/single": single,
				"n=4/certified/spread": spread,
			} {
				if err := readsJSON.Record(point, v); err != nil {
					b.Fatalf("recording %s: %v", point, err)
				}
			}
			b.Logf("n=4 GETs: ordered %.0f op/s, certified single-replica %.0f op/s (%.1fx), spread %.0f op/s (%.1fx)",
				ordered, single, single/ordered, spread, spread/ordered)
		}
		// The regression gate: a consensus-free certified read from ONE
		// replica must beat ordering every GET through the protocol ≥3×.
		if single < 3*ordered {
			b.Fatalf("certified single-replica reads %.0f op/s < 3x ordered %.0f op/s", single, ordered)
		}
	}
}
