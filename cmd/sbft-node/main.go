// Command sbft-node runs one SBFT replica over TCP. A deployment is
// described by a peers file with one "id host:port" line per replica;
// all replicas share a deterministic key seed (stand-in for the PKI/dealer
// setup of §III — production deployments deal threshold RSA keys with
// threshrsa.Dealer and distribute them out of band).
//
// Example 4-replica local deployment (f=1, c=0):
//
//	cat > peers.txt <<EOF
//	1 127.0.0.1:7001
//	2 127.0.0.1:7002
//	3 127.0.0.1:7003
//	4 127.0.0.1:7004
//	EOF
//	sbft-node -id 1 -peers peers.txt -f 1 &
//	sbft-node -id 2 -peers peers.txt -f 1 &
//	sbft-node -id 3 -peers peers.txt -f 1 &
//	sbft-node -id 4 -peers peers.txt -f 1 &
//	sbft-client -peers peers.txt -f 1 -n 100
//
// The peers file lists replicas only. Clients are not in it: a client
// announces its own listen address in the transport handshake and
// replicas learn the dial-back route from that (see transport.Shell).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/cryptopool"
	"sbft/internal/storage"
	"sbft/internal/transport"
)

// snapJob is one queued snapshot persistence task.
type snapJob struct {
	cs       *core.CertifiedSnapshot
	keepFrom uint64
	done     func(error)
}

// snapSink is the deployment's core.SnapshotSink: certified snapshots are
// encoded and fsynced by a worker goroutine so the replica's event loop
// never stalls on checkpoint persistence (the paper's "off the critical
// path" replica role, applied to the win/2-interval store write).
// Completions are routed back onto the event loop through Shell.Do, per
// the SnapshotSink contract.
type snapSink struct {
	led  *storage.Ledger
	do   func(func())
	jobs chan snapJob
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

func newSnapSink(led *storage.Ledger, do func(func())) *snapSink {
	s := &snapSink{led: led, do: do, jobs: make(chan snapJob, 4)}
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *snapSink) loop() {
	defer s.wg.Done()
	for j := range s.jobs {
		j := j
		err := core.PersistCertified(s.led, j.cs, j.keepFrom)
		s.do(func() { j.done(err) })
	}
}

// PersistSnapshot implements core.SnapshotSink. It only enqueues (it is
// called on the event loop); a saturated worker skips the snapshot — the
// next checkpoint's supersedes it anyway. The closed guard covers the
// shutdown window where the shell's event loop still delivers commits
// after Close ran (defers are LIFO: the sink closes before the shell) —
// a send on the closed jobs channel would panic, even under select.
func (s *snapSink) PersistSnapshot(cs *core.CertifiedSnapshot, keepFrom uint64, done func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		done(fmt.Errorf("snapshot sink closed"))
		return
	}
	select {
	case s.jobs <- snapJob{cs: cs, keepFrom: keepFrom, done: done}:
	default:
		done(fmt.Errorf("snapshot persist queue full"))
	}
}

// Close flushes queued persists (a graceful shutdown keeps the latest
// stable snapshot; only a hard crash can lose the in-flight write, which
// restart recovery tolerates by re-arming from the previous one).
func (s *snapSink) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

func loadPeers(path string) (map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	peers := make(map[int]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed peers line %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad id in %q: %w", line, err)
		}
		peers[id] = fields[1]
	}
	return peers, sc.Err()
}

func main() {
	var (
		id            = flag.Int("id", 0, "replica id (1..n)")
		peerFile      = flag.String("peers", "peers.txt", "peers file: one 'id host:port' per line")
		f             = flag.Int("f", 1, "fault threshold f")
		c             = flag.Int("c", 0, "redundant servers c")
		seed          = flag.String("seed", "sbft-demo", "shared key seed (demo PKI)")
		dataDir       = flag.String("data", "", "block store directory (empty = no persistence)")
		syncSnap      = flag.Bool("sync-snapshots", false, "persist checkpoint snapshots synchronously on the event loop (default: async worker)")
		cryptoWorkers = flag.Int("crypto-workers", runtime.NumCPU(), "threshold-crypto verification pool width (0 = verify inline on the event loop)")
	)
	flag.Parse()

	peers, err := loadPeers(*peerFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-node: loading peers: %v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig(*f, *c)
	if *id < 1 || *id > cfg.N() {
		fmt.Fprintf(os.Stderr, "sbft-node: id %d out of range [1,%d]\n", *id, cfg.N())
		os.Exit(1)
	}
	addr, ok := peers[*id]
	if !ok {
		fmt.Fprintf(os.Stderr, "sbft-node: id %d not in peers file\n", *id)
		os.Exit(1)
	}

	suite, keys, err := core.InsecureSuite(cfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-node: dealing keys: %v\n", err)
		os.Exit(1)
	}

	shell, err := transport.NewShell(*id, addr, peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-node: %v\n", err)
		os.Exit(1)
	}
	defer shell.Close()

	var store core.BlockStore
	var led *storage.Ledger
	if *dataDir != "" {
		led, err = storage.Open(*dataDir, storage.Options{Sync: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbft-node: opening block store: %v\n", err)
			os.Exit(1)
		}
		defer led.Close()
		store = led
	}

	rep, err := core.NewReplica(*id, cfg, suite, keys[*id-1], apps.NewKVApp(), shell, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-node: %v\n", err)
		os.Exit(1)
	}
	if led != nil && !*syncSnap {
		sink := newSnapSink(led, shell.Do)
		defer sink.Close()
		rep.SetSnapshotSink(sink)
	}
	if *cryptoWorkers > 0 {
		pool := cryptopool.New(suite, *cryptoWorkers, shell.Do)
		defer pool.Close()
		rep.SetCryptoSink(pool)
	}
	shell.Start(rep)
	fmt.Printf("sbft-node: replica %d/%d (f=%d c=%d) listening on %s\n", *id, cfg.N(), *f, *c, shell.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	var le, ls uint64
	var view uint64
	shell.Do(func() { le, ls, view = rep.LastExecuted(), rep.LastStable(), rep.View() })
	fmt.Printf("sbft-node: shutting down (view=%d executed=%d stable=%d)\n", view, le, ls)
}
