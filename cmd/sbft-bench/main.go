// Command sbft-bench regenerates the paper's evaluation (§IX): Figures 2
// and 3 (the key-value sweep over protocols × clients × failures × batch),
// the smart-contract benchmarks on continent- and world-scale WANs, the
// single-node baseline, the ingredient ablation, the view-change recovery
// measurement and the seamless fast↔slow switching demonstration.
//
// Usage:
//
//	sbft-bench -exp fig2                 # scaled Figure 2/3 sweep
//	sbft-bench -exp fig2 -full           # paper-scale f=64 (very slow)
//	sbft-bench -exp contract-continent   # §IX contract benchmark
//	sbft-bench -exp contract-world
//	sbft-bench -exp single-node
//	sbft-bench -exp load                 # open- vs closed-loop saturation curves
//	sbft-bench -exp ablation
//	sbft-bench -exp viewchange
//	sbft-bench -exp switch
//	sbft-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"sbft/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: fig2|contract-continent|contract-world|single-node|ablation|viewchange|switch|load|all")
		full = flag.Bool("full", false, "paper-scale parameters (f=64; hours of CPU)")
		f    = flag.Int("f", 0, "override fault threshold f")
		ops  = flag.Int("ops", 0, "override operations per client")
		seed = flag.Int64("seed", 1, "simulation seed")
		txs  = flag.Int("txs", 25_000, "transactions for the single-node baseline")
	)
	flag.Parse()

	grid := bench.DefaultGrid()
	if *full {
		grid = bench.PaperGrid()
	}
	if *f > 0 {
		grid.F = *f
	}
	if *ops > 0 {
		grid.OpsPerClient = *ops
	}
	grid.Seed = *seed

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig2", func() error {
		_, err := bench.RunFig2(grid)
		return err
	})
	run("contract-continent", func() error {
		cfg := bench.DefaultContract(false)
		cfg.F = grid.F
		cfg.Seed = grid.Seed
		_, err := bench.RunContract(cfg)
		return err
	})
	run("contract-world", func() error {
		cfg := bench.DefaultContract(true)
		cfg.F = grid.F
		cfg.Seed = grid.Seed
		_, err := bench.RunContract(cfg)
		return err
	})
	run("single-node", func() error {
		dir, err := os.MkdirTemp("", "sbft-single-node")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		_, err = bench.RunSingleNode(*txs, grid.Seed, dir, os.Stdout)
		return err
	})
	run("ablation", func() error {
		_, err := bench.RunAblation(grid)
		return err
	})
	run("viewchange", func() error { return bench.RunViewChange(grid) })
	run("load", func() error {
		// Open- vs closed-loop throughput curves, inline baseline vs the
		// parallel verification pool, at n=4 and the paper-scale n=9.
		for _, fc := range [][2]int{{1, 0}, {2, 1}} {
			for _, pool := range []int{0, 4} {
				cfg := bench.DefaultLoadCurve(fc[0], fc[1], pool, grid.Seed, os.Stdout)
				if _, err := bench.RunLoadCurve(cfg); err != nil {
					return err
				}
			}
		}
		return nil
	})
	run("switch", func() error { return bench.RunSeamlessSwitch(grid, os.Stdout) })
}
