// Command sbft-chaos runs seeded random fault schedules against simulated
// SBFT deployments and audits every run for safety: identical committed
// logs, matching state roots, no lost client acks, exactly-once
// execution. A failing seed is a complete reproduction recipe — rerun
// with -start <seed> -seeds 1 -v to replay it.
//
// Generators: "default" (benign crash / restart / partition / straggler /
// link faults, one replica at a time), "byzantine" (overlapping benign +
// Byzantine windows — equivocating primaries, silent-but-alive replicas,
// conflicting-checkpoint senders, stale-view spammers, snapshot-chunk
// tamperers — within the f/c budget, including an f=2 paper-scale
// configuration every 16th seed), "evm" (the benign generator with the
// EVM token ledger as the replicated application on every seed),
// "recovery" (multi-MiB state, a victim crashed across checkpoint
// intervals, windowed state transfer over lossy/reordering links with
// chunk-tampering or stale-meta snapshot servers, blame attribution
// asserted), and "colluding" (every seed paper-scale f=2 c=1 under
// scaled crypto: a key-share colluding pair — always including the
// view-0 primary — jointly signing partial quorums, conflicting
// checkpoints or lying snapshot metas, followed by an adaptive
// role-targeting attack window), and "openloop" (Poisson open-loop
// arrivals multiplexed over a client pool with the verification pool
// armed, a third of the seeds saturating the §V-C admission gate while
// a benign fault window runs), and "reads" (an open-loop mix of
// certified single-replica reads and writes under crash windows,
// whole-run forged-proof replicas, and partitioned laggards; every
// forged reply must be rejected client-side and every verified read
// audited against the certified frontier), and "sharded" (multi-group
// deployments with key-routed partitions driving cross-shard 2PC
// transactions under honest, crashing, equivocating and
// certificate-dropping coordinators plus in-group backup crashes; every
// run is audited for cross-shard atomicity, no prepared leftovers after
// recovery, no leaked locks, and per-group replica agreement). "both" splits the seed range across default and byzantine,
// keeping wall-time flat; both of those also run the EVM ledger
// themselves on every fifth seed.
//
// The -live flag (with -gen reads) replaces the simulator with a real
// 4-node loopback-TCP deployment — real sockets, real timers — and
// drives the write/read mix once as a deployment smoke; any hang,
// unverifiable value, or fully-degraded read path exits nonzero.
//
// Examples:
//
//	sbft-chaos                          # 100 benign + 100 Byzantine seeds
//	sbft-chaos -gen byzantine -seeds 1000
//	sbft-chaos -gen evm -seeds 50
//	sbft-chaos -gen sharded -seeds 24
//	sbft-chaos -gen reads -live
//	sbft-chaos -gen byzantine -start 176 -seeds 1 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sbft/internal/harness"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 200, "number of seeded scenarios to run")
		start   = flag.Int64("start", 1, "first seed")
		gen     = flag.String("gen", "both", "scenario generator: default, byzantine, evm, recovery, colluding, openloop, reads, sharded, or both (seed range split)")
		verbose = flag.Bool("v", false, "print every scenario outcome")
		live    = flag.Bool("live", false, "with -gen reads: run the write/read mix over a real 4-node loopback-TCP deployment instead of the simulator")
	)
	flag.Parse()

	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "sbft-chaos: -seeds must be ≥ 1")
		os.Exit(2)
	}

	if *live {
		if *gen != "reads" {
			fmt.Fprintln(os.Stderr, "sbft-chaos: -live only supports -gen reads")
			os.Exit(2)
		}
		if err := runLiveReads(16, 48, 120*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-chaos: live reads smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *gen == "sharded" {
		cr := harness.RunShardChaos(harness.SeedRange(*start, *seeds), harness.ShardGen,
			func(seed int64, rep *harness.ShardReport, err error) {
				switch {
				case err != nil:
					fmt.Printf("[sharded] seed %d ERROR: %v\n", seed, err)
				case rep.Failed():
					fmt.Printf("[sharded] %s\n", rep.Summary())
				case *verbose:
					fmt.Printf("[sharded] %s\n", rep.Summary())
				}
			})
		fmt.Printf("[sharded] %s\n", cr.Summary())
		if !cr.OK() {
			fmt.Printf("[sharded] reproduce: sbft-chaos -gen sharded -start %d -seeds 1 -v\n", cr.MinFailingSeed)
			os.Exit(1)
		}
		return
	}

	type sweep struct {
		name  string
		gen   harness.ScenarioGen
		seeds []int64
	}
	var sweeps []sweep
	switch *gen {
	case "default":
		sweeps = []sweep{{"default", harness.DefaultGen, harness.SeedRange(*start, *seeds)}}
	case "byzantine":
		sweeps = []sweep{{"byzantine", harness.ByzantineGen, harness.SeedRange(*start, *seeds)}}
	case "evm":
		sweeps = []sweep{{"evm", harness.EVMGen, harness.SeedRange(*start, *seeds)}}
	case "recovery":
		sweeps = []sweep{{"recovery", harness.RecoveryGen, harness.SeedRange(*start, *seeds)}}
	case "colluding":
		sweeps = []sweep{{"colluding", harness.ColludingGen, harness.SeedRange(*start, *seeds)}}
	case "openloop":
		sweeps = []sweep{{"openloop", harness.OpenLoopGen, harness.SeedRange(*start, *seeds)}}
	case "reads":
		sweeps = []sweep{{"reads", harness.ReadGen, harness.SeedRange(*start, *seeds)}}
	case "both":
		// Split the budget so adding the Byzantine sweep keeps the total
		// scenario count (and CI wall-time) flat.
		half := *seeds / 2
		sweeps = []sweep{
			{"default", harness.DefaultGen, harness.SeedRange(*start, *seeds-half)},
			{"byzantine", harness.ByzantineGen, harness.SeedRange(*start, half)},
		}
	default:
		fmt.Fprintf(os.Stderr, "sbft-chaos: unknown generator %q (want default, byzantine, evm, recovery, colluding, openloop, reads, or both)\n", *gen)
		os.Exit(2)
	}

	failed := false
	for _, sw := range sweeps {
		if len(sw.seeds) == 0 {
			continue
		}
		// Outcomes stream as the sweep progresses; aggregation (including
		// the minimal failing seed) lives in harness.RunChaos.
		cr := harness.RunChaos(sw.seeds, sw.gen,
			func(seed int64, rep *harness.Report, err error) {
				switch {
				case err != nil:
					fmt.Printf("[%s] seed %d ERROR: %v\n", sw.name, seed, err)
				case rep.Failed():
					fmt.Printf("[%s] %s\n", sw.name, rep.Summary())
					for _, f := range rep.Faults {
						fmt.Printf("  fault: %s\n", f)
					}
				case *verbose:
					fmt.Printf("[%s] %s\n", sw.name, rep.Summary())
				}
			})
		fmt.Printf("[%s] %s\n", sw.name, cr.Summary())
		if !cr.OK() {
			failed = true
			fmt.Printf("[%s] reproduce: sbft-chaos -gen %s -start %d -seeds 1 -v\n",
				sw.name, sw.name, cr.MinFailingSeed)
		}
	}
	if failed {
		os.Exit(1)
	}
}
