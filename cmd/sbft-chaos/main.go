// Command sbft-chaos runs seeded random fault schedules against simulated
// SBFT deployments and audits every run for safety: identical committed
// logs, matching state roots, no lost client acks, exactly-once
// execution. A failing seed is a complete reproduction recipe — rerun
// with -start <seed> -seeds 1 -v to replay it.
//
// Examples:
//
//	sbft-chaos                      # 200 seeds, all four protocol variants
//	sbft-chaos -seeds 1000          # longer sweep
//	sbft-chaos -start 176 -seeds 1 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"sbft/internal/harness"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 200, "number of seeded scenarios to run")
		start   = flag.Int64("start", 1, "first seed")
		verbose = flag.Bool("v", false, "print every scenario outcome")
	)
	flag.Parse()

	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "sbft-chaos: -seeds must be ≥ 1")
		os.Exit(2)
	}

	// Outcomes stream as the sweep progresses; aggregation (including the
	// minimal failing seed) lives in harness.RunChaos.
	cr := harness.RunChaos(harness.SeedRange(*start, *seeds), harness.DefaultGen,
		func(seed int64, rep *harness.Report, err error) {
			switch {
			case err != nil:
				fmt.Printf("seed %d ERROR: %v\n", seed, err)
			case rep.Failed():
				fmt.Println(rep.Summary())
				for _, f := range rep.Faults {
					fmt.Printf("  fault: %s\n", f)
				}
			case *verbose:
				fmt.Println(rep.Summary())
			}
		})

	fmt.Println(cr.Summary())
	if !cr.OK() {
		os.Exit(1)
	}
}
