package main

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/transport"
)

// runLiveReads is the real-transport smoke for the reads mix: it boots a
// 4-node (f=1, c=0) deployment over loopback TCP — real sockets, real
// goroutines, real wall-clock timers, none of the simulator's
// determinism — populates keys through consensus, then drives a mix of
// certified single-replica reads and further writes. It fails if any
// operation hangs, any certified read returns a value that consensus
// never committed, or every read fell back to ordering (the
// consensus-free path never worked at all).
func runLiveReads(writes, reads int, timeout time.Duration) error {
	cfg := core.DefaultConfig(1, 0)
	cfg.BatchTimeout = 5 * time.Millisecond
	// Certified reads serve from checkpoint snapshots; the default win/2
	// interval (128) would never checkpoint inside this small smoke.
	cfg.CheckpointInterval = 4
	n := cfg.N()
	suite, keys, err := core.InsecureSuite(cfg, "chaos-live")
	if err != nil {
		return err
	}

	replicaPeers := make(map[int]string)
	shells := make([]*transport.Shell, n+1)
	for id := 1; id <= n; id++ {
		sh, err := transport.NewShell(id, "127.0.0.1:0", replicaPeers)
		if err != nil {
			return err
		}
		defer sh.Close()
		shells[id] = sh
		replicaPeers[id] = sh.Addr()
	}
	for id := 1; id <= n; id++ {
		rep, err := core.NewReplica(id, cfg, suite, keys[id-1], apps.NewKVApp(), shells[id], nil)
		if err != nil {
			return err
		}
		shells[id].Start(rep)
	}

	clientPeers := make(map[int]string, n)
	for id, addr := range replicaPeers {
		clientPeers[id] = addr
	}
	clientShell, err := transport.NewShell(core.ClientBase, "127.0.0.1:0", clientPeers)
	if err != nil {
		return err
	}
	defer clientShell.Close()
	client, err := core.NewClient(core.ClientBase, cfg, suite, clientShell, apps.VerifyKV)
	if err != nil {
		return err
	}
	client.RequestTimeout = 2 * time.Second
	client.SetReadKey(kvstore.ReadKey)
	clientShell.Start(client)
	clientShell.AnnounceAll()

	key := func(i int) string { return fmt.Sprintf("live/%d", i) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }

	// Phase 1: commit the write set through consensus.
	var mu sync.Mutex
	done := make(chan error, 1)
	finish := func(err error) {
		select {
		case done <- err:
		default:
		}
	}
	wrote := 0
	client.SetOnResult(func(res core.Result) {
		mu.Lock()
		defer mu.Unlock()
		wrote++
		if wrote >= writes {
			finish(nil)
			return
		}
		if err := client.Submit(kvstore.Put(key(wrote), val(wrote))); err != nil {
			finish(err)
		}
	})
	clientShell.Do(func() {
		if err := client.Submit(kvstore.Put(key(0), val(0))); err != nil {
			finish(err)
		}
	})
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("write phase: %w", err)
		}
	case <-time.After(timeout):
		return fmt.Errorf("write phase hung: %d/%d writes committed over TCP", wrote, writes)
	}

	// Phase 2: certified reads over the committed keys, interleaved with
	// fresh writes so the certified frontier keeps moving.
	readDone := make(chan error, 1)
	finishRead := func(err error) {
		select {
		case readDone <- err:
		default:
		}
	}
	completed, ordered, failovers := 0, 0, 0
	var salt uint64
	nextRead := func() error {
		salt++
		return client.SubmitRead(kvstore.GetUnique(key(int(salt)%writes), salt))
	}
	// The client allows one outstanding request of either kind, so the
	// interleaved writes chain the next read from their own completion.
	client.SetOnResult(func(res core.Result) {
		mu.Lock()
		defer mu.Unlock()
		if err := nextRead(); err != nil {
			finishRead(err)
		}
	})
	client.SetOnReadResult(func(res core.ReadResult) {
		mu.Lock()
		defer mu.Unlock()
		i := int(salt) % writes
		if !res.Ordered {
			if !res.Found {
				finishRead(fmt.Errorf("certified read of %q found nothing", res.Key))
				return
			}
			if !bytes.Equal(res.Val, val(i)) {
				finishRead(fmt.Errorf("certified read of %q returned %q, consensus committed %q", res.Key, res.Val, val(i)))
				return
			}
		} else {
			ordered++
		}
		failovers += res.Failovers
		completed++
		if completed >= reads {
			finishRead(nil)
			return
		}
		if completed%4 == 0 {
			// Interleave a write (same value it already holds, so later
			// reads verify unchanged): the read path must tolerate a moving
			// certified frontier.
			if err := client.Submit(kvstore.Put(key(completed%writes), val(completed%writes))); err != nil {
				finishRead(err)
			}
			return
		}
		if err := nextRead(); err != nil {
			finishRead(err)
		}
	})
	clientShell.Do(func() {
		if err := nextRead(); err != nil {
			finishRead(err)
		}
	})
	select {
	case err := <-readDone:
		if err != nil {
			return fmt.Errorf("read phase: %w", err)
		}
	case <-time.After(timeout):
		return fmt.Errorf("read phase hung: %d/%d reads completed over TCP", completed, reads)
	}
	if ordered >= reads {
		return fmt.Errorf("all %d reads fell back to ordering — the certified read path never served one", reads)
	}
	fmt.Printf("[live] %d writes + %d certified reads over TCP ok (%d ordered fallbacks, %d failovers)\n",
		writes, reads, ordered, failovers)
	return nil
}
