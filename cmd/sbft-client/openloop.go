package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/load"
	"sbft/internal/transport"
)

// runOpenLoop drives the deployment with real-time Poisson arrivals
// multiplexed over a pool of TCP client slots — the live counterpart of
// internal/load.Run, sharing its Book slot/shed/latency ledger. A live
// run at increasing -openloop rates finds the deployment's saturation
// knee: the rate where Dropped turns nonzero is where the system stopped
// keeping up with offered load.
func runOpenLoop(peers map[int]string, cfg core.Config, seed string, rate float64, slots int, warmup, window, drain time.Duration, listen string) error {
	suite, _, err := core.InsecureSuite(cfg, seed)
	if err != nil {
		return err
	}

	shells := make([]*transport.Shell, slots)
	clients := make([]*core.Client, slots)
	var mu sync.Mutex
	book := load.NewBook(slots)
	for s := 0; s < slots; s++ {
		s := s
		shell, err := transport.NewShell(core.ClientBase+s, listen, peers)
		if err != nil {
			return err
		}
		defer shell.Close()
		client, err := core.NewClient(core.ClientBase+s, cfg, suite, shell, apps.VerifyKV)
		if err != nil {
			return err
		}
		client.RequestTimeout = 4 * time.Second
		client.SetOnResult(func(res core.Result) {
			mu.Lock()
			book.Complete(s, res.Latency, res.FastAck, res.Retried)
			mu.Unlock()
		})
		shell.Start(client)
		shell.AnnounceAll()
		shells[s], clients[s] = shell, client
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	start := time.Now()
	measureFrom := start.Add(warmup)
	measureTo := measureFrom.Add(window)
	fmt.Printf("open loop: %.0f req/s over %d slots (%v warmup, %v window)\n", rate, slots, warmup, window)

	for {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / rate)
		time.Sleep(gap)
		now := time.Now()
		if now.After(measureTo) {
			break
		}
		mu.Lock()
		slot, i, ok := book.Arrive(now.After(measureFrom))
		mu.Unlock()
		if !ok {
			continue // shed: every slot busy
		}
		op := kvstore.Put(fmt.Sprintf("ol/c%d/k%d", slot, i), []byte("v"))
		shells[slot].Do(func() {
			mu.Lock()
			defer mu.Unlock()
			if err := clients[slot].Submit(op); err != nil {
				book.Requeue(slot)
			} else {
				book.Submitted()
			}
		})
	}

	// Drain: let measured in-flight requests finish.
	drainEnd := time.Now().Add(drain)
	for time.Now().Before(drainEnd) {
		mu.Lock()
		inflight := book.InFlight()
		mu.Unlock()
		if inflight == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	mu.Lock()
	res := book.Finalize(window)
	mu.Unlock()
	fmt.Printf("offered %d, submitted %d, shed %d, completed %d (%d total): %.1f op/s\n",
		res.Offered, res.Submitted, res.Dropped, res.Completed, res.CompletedAll, res.Throughput)
	if res.Completed > 0 {
		fmt.Printf("latency: mean=%v p50=%v p95=%v p99=%v  single-message acks: %d/%d, retries %d\n",
			res.MeanLatency.Round(time.Microsecond), res.P50Latency.Round(time.Microsecond),
			res.P95Latency.Round(time.Microsecond), res.P99Latency.Round(time.Microsecond),
			res.FastAcks, res.Completed, res.Retries)
	}
	if res.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "sbft-client: %d arrivals shed — offered load exceeds the deployment's capacity at %d slots\n",
			res.Dropped, slots)
	}
	return nil
}
