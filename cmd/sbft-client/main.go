// Command sbft-client drives a TCP SBFT deployment with key-value
// operations and reports latency/throughput. The default mode is a
// closed loop (-n sequential operations); -openloop <rate> switches to
// real-time Poisson arrivals multiplexed over -slots TCP clients,
// sharing internal/load's shed accounting so live runs can find the
// saturation knee. See cmd/sbft-node for a complete local deployment
// walkthrough.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sbft/internal/apps"
	"sbft/internal/core"
	"sbft/internal/kvstore"
	"sbft/internal/transport"
)

func loadPeers(path string) (map[int]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	peers := make(map[int]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed peers line %q", line)
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad id in %q: %w", line, err)
		}
		peers[id] = fields[1]
	}
	return peers, sc.Err()
}

func main() {
	var (
		peerFile = flag.String("peers", "peers.txt", "peers file")
		f        = flag.Int("f", 1, "fault threshold f")
		c        = flag.Int("c", 0, "redundant servers c")
		seed     = flag.String("seed", "sbft-demo", "shared key seed (must match nodes)")
		n        = flag.Int("n", 100, "operations to send")
		reads    = flag.Int("reads", 0, "certified single-replica reads to issue after the writes")
		listen   = flag.String("listen", "127.0.0.1:0", "client listen address")
		openloop = flag.Float64("openloop", 0, "open-loop mode: Poisson arrivals at this rate (req/s) over a slot pool instead of the closed loop")
		slots    = flag.Int("slots", 8, "open-loop client slot pool size")
		duration = flag.Duration("duration", 10*time.Second, "open-loop measurement window")
		warmup   = flag.Duration("warmup", time.Second, "open-loop warmup before measurement")
	)
	flag.Parse()

	peers, err := loadPeers(*peerFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig(*f, *c)
	if *openloop > 0 {
		if err := runOpenLoop(peers, cfg, *seed, *openloop, *slots, *warmup, *duration, 5*time.Second, *listen); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
			os.Exit(1)
		}
		return
	}
	suite, _, err := core.InsecureSuite(cfg, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		os.Exit(1)
	}

	id := core.ClientBase
	shell, err := transport.NewShell(id, *listen, peers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		os.Exit(1)
	}
	defer shell.Close()

	client, err := core.NewClient(id, cfg, suite, shell, apps.VerifyKV)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		os.Exit(1)
	}
	client.RequestTimeout = 4 * time.Second
	client.SetReadKey(kvstore.ReadKey)

	done := make(chan struct{})
	var latencies []time.Duration
	var fastAcks int
	count := 0
	client.SetOnResult(func(res core.Result) {
		latencies = append(latencies, res.Latency)
		if res.FastAck {
			fastAcks++
		}
		count++
		if count >= *n {
			close(done)
			return
		}
		op := kvstore.Put(fmt.Sprintf("bench/%d", count), []byte("value"))
		if err := client.Submit(op); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
			close(done)
		}
	})
	shell.Start(client)
	// Announce the client's dial-back address to every replica up front:
	// replicas otherwise learn it only from the forwarded first request,
	// and any reply sent before that is dropped as "unknown peer", costing
	// a full retry timeout on the first operation.
	shell.AnnounceAll()

	start := time.Now()
	shell.Do(func() {
		if err := client.Submit(kvstore.Put("bench/0", []byte("value"))); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		}
	})
	<-done
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("completed %d ops in %v: %.1f op/s\n", count, elapsed.Round(time.Millisecond),
		float64(count)/elapsed.Seconds())
	if count > 0 {
		fmt.Printf("latency: mean=%v p50=%v p95=%v  single-message acks: %d/%d\n",
			(sum / time.Duration(count)).Round(time.Microsecond),
			latencies[count/2].Round(time.Microsecond),
			latencies[count*95/100].Round(time.Microsecond),
			fastAcks, count)
	}

	if *reads > 0 {
		runReads(client, shell, *reads, *n)
	}
}

// runReads issues a closed loop of certified reads over the keys the
// write phase populated and reports how many completed on the
// consensus-free path (verified value + Merkle proof from one replica)
// versus falling back to ordering.
func runReads(client *core.Client, shell *transport.Shell, reads, keys int) {
	done := make(chan struct{})
	var latencies []time.Duration
	var failovers, ordered int
	count := 0
	salt := uint64(0)
	next := func() error {
		salt++
		return client.SubmitRead(kvstore.GetUnique(fmt.Sprintf("bench/%d", count%keys), salt))
	}
	client.SetOnReadResult(func(res core.ReadResult) {
		latencies = append(latencies, res.Latency)
		failovers += res.Failovers
		if res.Ordered {
			ordered++
		}
		count++
		if count >= reads {
			close(done)
			return
		}
		if err := next(); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
			close(done)
		}
	})
	start := time.Now()
	shell.Do(func() {
		if err := next(); err != nil {
			fmt.Fprintf(os.Stderr, "sbft-client: %v\n", err)
		}
	})
	<-done
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	fmt.Printf("completed %d certified reads in %v: %.1f op/s (%d ordered fallbacks, %d failovers)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds(), ordered, failovers)
	if count > 0 {
		fmt.Printf("read latency: mean=%v p50=%v p95=%v\n",
			(sum / time.Duration(count)).Round(time.Microsecond),
			latencies[count/2].Round(time.Microsecond),
			latencies[count*95/100].Round(time.Microsecond))
	}
}
